"""A hand-written workload corpus of realistic web-service operations.

The synthetic generator controls distributions; this corpus controls
*stories*.  Each unit models a recognizable web-service operation (login
handler, file download, report renderer, ...) written in the mini-IR, with
the vulnerability or its fix placed the way real code places it.  It serves
as a second, structurally different workload for tests and examples, and as
living documentation of what the mini-IR expresses.

Ground truth comes from the taint oracle — like the generator, the corpus
cannot desynchronize truth from code.
"""

from __future__ import annotations

from repro.workload.code_model import CodeUnit, SinkSite, Statement, StatementKind
from repro.workload.generator import SiteProfile, Workload, WorkloadConfig
from repro.workload.ground_truth import GroundTruth
from repro.workload.oracle import vulnerable_sites
from repro.workload.taxonomy import VulnerabilityType

__all__ = ["corpus_units", "corpus_workload"]

I = StatementKind.INPUT
C = StatementKind.CONST
A = StatementKind.ASSIGN
CC = StatementKind.CONCAT
SAN = StatementKind.SANITIZE
SK = StatementKind.SINK

SQLI = VulnerabilityType.SQL_INJECTION
XSS = VulnerabilityType.XSS
PATH = VulnerabilityType.PATH_TRAVERSAL
CMD = VulnerabilityType.COMMAND_INJECTION
LDAP = VulnerabilityType.LDAP_INJECTION
XPATH = VulnerabilityType.XPATH_INJECTION


def corpus_units() -> list[CodeUnit]:
    """The twelve corpus operations."""
    return [
        # 1. Classic login: username straight into the SQL query. Vulnerable.
        CodeUnit(
            "login-naive",
            (
                Statement(I, target="username"),
                Statement(C, target="query_prefix"),
                Statement(CC, target="query", sources=("query_prefix", "username")),
                Statement(SK, sources=("query",), vuln_type=SQLI),
            ),
        ),
        # 2. Parameterized login: the input is escaped for SQL first. Safe.
        CodeUnit(
            "login-parameterized",
            (
                Statement(I, target="username"),
                Statement(SAN, target="bound", sources=("username",), vuln_type=SQLI),
                Statement(C, target="query_prefix"),
                Statement(CC, target="query", sources=("query_prefix", "bound")),
                Statement(SK, sources=("query",), vuln_type=SQLI),
            ),
        ),
        # 3. Search endpoint: the term is SQL-escaped, then echoed into the
        #    results page without HTML encoding. Safe for SQLi, vulnerable
        #    for XSS — the cross-class trap.
        CodeUnit(
            "search-echo",
            (
                Statement(I, target="term"),
                Statement(SAN, target="sql_safe", sources=("term",), vuln_type=SQLI),
                Statement(C, target="select"),
                Statement(CC, target="query", sources=("select", "sql_safe")),
                Statement(SK, sources=("query",), vuln_type=SQLI),
                Statement(C, target="heading"),
                Statement(CC, target="page", sources=("heading", "sql_safe")),
                Statement(SK, sources=("page",), vuln_type=XSS),
            ),
        ),
        # 4. File download with a whitelist-style fix applied late. Safe.
        CodeUnit(
            "download-checked",
            (
                Statement(I, target="filename"),
                Statement(A, target="requested", sources=("filename",)),
                Statement(SAN, target="resolved", sources=("requested",), vuln_type=PATH),
                Statement(SK, sources=("resolved",), vuln_type=PATH),
            ),
        ),
        # 5. File download that sanitizes a *copy* and opens the original.
        #    Vulnerable — the "fixed the wrong variable" bug.
        CodeUnit(
            "download-wrong-variable",
            (
                Statement(I, target="filename"),
                Statement(SAN, target="resolved", sources=("filename",), vuln_type=PATH),
                Statement(SK, sources=("filename",), vuln_type=PATH),
            ),
        ),
        # 6. Report renderer: deep formatting pipeline, no encoding.
        #    Vulnerable, and hard for depth-limited analyzers.
        CodeUnit(
            "report-deep-pipeline",
            (
                Statement(I, target="title"),
                Statement(A, target="trimmed", sources=("title",)),
                Statement(A, target="localized", sources=("trimmed",)),
                Statement(C, target="css"),
                Statement(CC, target="styled", sources=("css", "localized")),
                Statement(A, target="wrapped", sources=("styled",)),
                Statement(A, target="footered", sources=("wrapped",)),
                Statement(A, target="body", sources=("footered",)),
                Statement(SK, sources=("body",), vuln_type=XSS),
            ),
        ),
        # 7. Ping utility: host parameter shell-escaped. Safe, but the
        #    sanitizer sits far from the sink.
        CodeUnit(
            "ping-escaped",
            (
                Statement(I, target="host"),
                Statement(SAN, target="safe_host", sources=("host",), vuln_type=CMD),
                Statement(C, target="ping_bin"),
                Statement(CC, target="cmdline", sources=("ping_bin", "safe_host")),
                Statement(A, target="final", sources=("cmdline",)),
                Statement(SK, sources=("final",), vuln_type=CMD),
            ),
        ),
        # 8. Backup script runner: config name concatenated raw. Vulnerable.
        CodeUnit(
            "backup-raw-command",
            (
                Statement(I, target="job_name"),
                Statement(C, target="script"),
                Statement(CC, target="cmdline", sources=("script", "job_name")),
                Statement(SK, sources=("cmdline",), vuln_type=CMD),
            ),
        ),
        # 9. Directory lookup: the filter is LDAP-escaped but the tree path
        #    is not — two sinks, one vulnerable.
        CodeUnit(
            "ldap-partial-fix",
            (
                Statement(I, target="user_filter"),
                Statement(SAN, target="safe_filter", sources=("user_filter",), vuln_type=LDAP),
                Statement(SK, sources=("safe_filter",), vuln_type=LDAP),
                Statement(I, target="tree_path"),
                Statement(SK, sources=("tree_path",), vuln_type=LDAP),
            ),
        ),
        # 10. XML account export: account id into an XPath query with an
        #     XSS sanitizer — wrong class, still vulnerable.
        CodeUnit(
            "xpath-wrong-sanitizer",
            (
                Statement(I, target="account_id"),
                Statement(SAN, target="cleaned", sources=("account_id",), vuln_type=XSS),
                Statement(C, target="xpath_prefix"),
                Statement(CC, target="expression", sources=("xpath_prefix", "cleaned")),
                Statement(SK, sources=("expression",), vuln_type=XPATH),
            ),
        ),
        # 11. Static status page: constants only. Safe and boring, as most
        #     code is.
        CodeUnit(
            "status-static",
            (
                Statement(C, target="version"),
                Statement(C, target="banner"),
                Statement(CC, target="page", sources=("banner", "version")),
                Statement(SK, sources=("page",), vuln_type=XSS),
            ),
        ),
        # 12. Audit logger: user agent flows into a shell one-liner through
        #     a constant-led concat — the pattern field-insensitive
        #     analyzers lose. Vulnerable.
        CodeUnit(
            "audit-logger",
            (
                Statement(I, target="user_agent"),
                Statement(C, target="logger_bin"),
                Statement(CC, target="cmdline", sources=("logger_bin", "user_agent")),
                Statement(A, target="final", sources=("cmdline",)),
                Statement(SK, sources=("final",), vuln_type=CMD),
            ),
        ),
        # 13. Profile page: the display name is HTML-escaped, then someone
        #     "un-refactors" by re-reading the raw value for the tooltip.
        #     Two XSS sinks: one safe, one vulnerable.
        CodeUnit(
            "profile-tooltip",
            (
                Statement(I, target="display_name"),
                Statement(SAN, target="escaped", sources=("display_name",), vuln_type=XSS),
                Statement(SK, sources=("escaped",), vuln_type=XSS),
                Statement(A, target="tooltip", sources=("display_name",)),
                Statement(SK, sources=("tooltip",), vuln_type=XSS),
            ),
        ),
        # 14. CSV export: everything derives from query constants. Safe.
        CodeUnit(
            "csv-export-static",
            (
                Statement(C, target="header_row"),
                Statement(C, target="delimiter"),
                Statement(CC, target="contents", sources=("header_row", "delimiter")),
                Statement(SK, sources=("contents",), vuln_type=PATH),
            ),
        ),
        # 15. Avatar upload: user-controlled filename resolved late and
        #     correctly. Safe, with the longest sanitized pipeline in the
        #     corpus (stresses post-sanitizer tracking).
        CodeUnit(
            "avatar-upload",
            (
                Statement(I, target="filename"),
                Statement(A, target="trimmed", sources=("filename",)),
                Statement(A, target="lowered", sources=("trimmed",)),
                Statement(SAN, target="resolved", sources=("lowered",), vuln_type=PATH),
                Statement(A, target="prefixed", sources=("resolved",)),
                Statement(A, target="final_path", sources=("prefixed",)),
                Statement(SK, sources=("final_path",), vuln_type=PATH),
            ),
        ),
        # 16. Paginated search: page size sanitized for SQL, but the sort
        #     column is interpolated raw. Vulnerable.
        CodeUnit(
            "search-paginated",
            (
                Statement(I, target="page_size"),
                Statement(SAN, target="safe_size", sources=("page_size",), vuln_type=SQLI),
                Statement(I, target="sort_column"),
                Statement(C, target="select"),
                Statement(CC, target="query",
                          sources=("select", "sort_column", "safe_size")),
                Statement(SK, sources=("query",), vuln_type=SQLI),
            ),
        ),
        # 17. Webhook registration: the callback host is shell-escaped for
        #     the curl health check but the path is not — mixed CONCAT with
        #     one raw operand. Vulnerable.
        CodeUnit(
            "webhook-healthcheck",
            (
                Statement(I, target="callback_host"),
                Statement(SAN, target="safe_host", sources=("callback_host",), vuln_type=CMD),
                Statement(I, target="callback_path"),
                Statement(C, target="curl_bin"),
                Statement(CC, target="cmdline",
                          sources=("curl_bin", "safe_host", "callback_path")),
                Statement(SK, sources=("cmdline",), vuln_type=CMD),
            ),
        ),
        # 18. Group lookup: LDAP filter built entirely from constants plus a
        #     properly escaped group name. Safe.
        CodeUnit(
            "group-lookup",
            (
                Statement(I, target="group_name"),
                Statement(SAN, target="escaped", sources=("group_name",), vuln_type=LDAP),
                Statement(C, target="filter_prefix"),
                Statement(CC, target="ldap_filter", sources=("filter_prefix", "escaped")),
                Statement(SK, sources=("ldap_filter",), vuln_type=LDAP),
            ),
        ),
        # 19. Invoice renderer: amount flows through a seven-hop formatting
        #     pipeline into XPath. Vulnerable and deep — the second
        #     depth-budget stressor.
        CodeUnit(
            "invoice-xpath",
            (
                Statement(I, target="invoice_id"),
                Statement(A, target="v1", sources=("invoice_id",)),
                Statement(A, target="v2", sources=("v1",)),
                Statement(A, target="v3", sources=("v2",)),
                Statement(A, target="v4", sources=("v3",)),
                Statement(A, target="v5", sources=("v4",)),
                Statement(A, target="v6", sources=("v5",)),
                Statement(A, target="v7", sources=("v6",)),
                Statement(SK, sources=("v7",), vuln_type=XPATH),
            ),
        ),
        # 20. Health endpoint: reads nothing, prints a constant. Safe —
        #     the unit every real service has.
        CodeUnit(
            "health-endpoint",
            (
                Statement(C, target="status"),
                Statement(SK, sources=("status",), vuln_type=XSS),
            ),
        ),
    ]


def _chain_length(unit: CodeUnit, sink_index: int) -> int:
    """Length of the def-use chain feeding the sink (backward walk)."""
    sink = unit.statements[sink_index]
    current = sink.sources[0]
    length = 0
    for index in range(sink_index - 1, -1, -1):
        statement = unit.statements[index]
        if statement.target != current:
            continue
        if statement.kind in (StatementKind.INPUT, StatementKind.CONST):
            break
        length += 1
        # Follow the (first tainted-ish) operand backward.
        current = statement.sources[0]
        if statement.kind is StatementKind.CONCAT and len(statement.sources) > 1:
            # Prefer a non-constant operand if the first is a constant
            # defined immediately above (the corpus' idiom).
            for source in statement.sources:
                definition = next(
                    (
                        s
                        for s in reversed(unit.statements[:index])
                        if s.target == source
                    ),
                    None,
                )
                if definition is not None and definition.kind is not StatementKind.CONST:
                    current = source
                    break
    return max(1, length)


def corpus_workload() -> Workload:
    """The corpus as a scoreable :class:`Workload`."""
    units = corpus_units()
    sites: list[SinkSite] = []
    vulnerable: set[SinkSite] = set()
    profiles: dict[SinkSite, SiteProfile] = {}
    for unit in units:
        truth = vulnerable_sites(unit)
        for site in unit.sink_sites():
            sites.append(site)
            is_vulnerable = site in truth
            if is_vulnerable:
                vulnerable.add(site)
            chain = _chain_length(unit, site.statement_index)
            sanitizers = [
                s
                for s in unit.statements[: site.statement_index]
                if s.kind is StatementKind.SANITIZE
            ]
            cross_class = any(s.vuln_type is not site.vuln_type for s in sanitizers)
            profiles[site] = SiteProfile(
                vuln_type=site.vuln_type,
                vulnerable=is_vulnerable,
                chain_length=chain,
                sanitizer_present=bool(sanitizers),
                cross_class_sanitizer=cross_class and is_vulnerable,
                difficulty=min(1.0, 0.15 * chain + (0.2 if cross_class else 0.0)),
            )
    truth = GroundTruth.from_sites(sites, vulnerable)
    config = WorkloadConfig(n_units=len(units), seed=0, name="corpus")
    return Workload(
        name="corpus",
        units=tuple(units),
        truth=truth,
        profiles=profiles,
        config=config,
    )

"""Vulnerability taxonomy used by the synthetic workloads.

The original campaigns benchmarked tools on injection-style vulnerabilities
in web services and web applications.  We model the same space: each
:class:`VulnerabilityType` names an injection class, its CWE identifier, the
kind of *sink* it occurs at, and baseline detectability characteristics used
by the workload generator and the dynamic tester.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["VulnerabilityType", "VulnerabilityTraits", "TRAITS"]


class VulnerabilityType(enum.Enum):
    """Injection vulnerability classes covered by the workloads."""

    SQL_INJECTION = "sql_injection"
    XSS = "xss"
    PATH_TRAVERSAL = "path_traversal"
    COMMAND_INJECTION = "command_injection"
    LDAP_INJECTION = "ldap_injection"
    XPATH_INJECTION = "xpath_injection"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class VulnerabilityTraits:
    """Static characteristics of a vulnerability class.

    ``base_dynamic_detectability`` is the probability that a *perfectly
    aimed* attack payload triggers an observable failure for this class; it
    calibrates the dynamic (penetration-testing style) tool.  ``signature``
    is the sink API label the pattern scanner greps for.
    """

    cwe: int
    sink_label: str
    signature: str
    base_dynamic_detectability: float


TRAITS: dict[VulnerabilityType, VulnerabilityTraits] = {
    VulnerabilityType.SQL_INJECTION: VulnerabilityTraits(
        cwe=89,
        sink_label="execute_sql",
        signature="executeQuery",
        base_dynamic_detectability=0.90,
    ),
    VulnerabilityType.XSS: VulnerabilityTraits(
        cwe=79,
        sink_label="render_html",
        signature="print",
        base_dynamic_detectability=0.85,
    ),
    VulnerabilityType.PATH_TRAVERSAL: VulnerabilityTraits(
        cwe=22,
        sink_label="open_file",
        signature="FileInputStream",
        base_dynamic_detectability=0.70,
    ),
    VulnerabilityType.COMMAND_INJECTION: VulnerabilityTraits(
        cwe=78,
        sink_label="run_command",
        signature="Runtime.exec",
        base_dynamic_detectability=0.75,
    ),
    VulnerabilityType.LDAP_INJECTION: VulnerabilityTraits(
        cwe=90,
        sink_label="ldap_search",
        signature="search",
        base_dynamic_detectability=0.55,
    ),
    VulnerabilityType.XPATH_INJECTION: VulnerabilityTraits(
        cwe=643,
        sink_label="xpath_eval",
        signature="evaluate",
        base_dynamic_detectability=0.50,
    ),
}

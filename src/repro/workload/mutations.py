"""Workload mutations: fixes and regressions.

Benchmarks are not static artifacts: operators patch a vulnerability and
expect the next campaign to reflect it, or seed a regression to test that
tools (and metrics) notice.  These operators edit a workload *through the
code model* — they insert or remove sanitizers in the unit's statements and
let the taint oracle re-derive the ground truth — so a mutation can never
desynchronize code and truth.

Statement insertion shifts statement indices, so every analysis site of the
touched unit is re-mapped; the returned workload is a complete, consistent
replacement.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import WorkloadError
from repro.workload.code_model import CodeUnit, SinkSite, Statement, StatementKind
from repro.workload.generator import SiteProfile, Workload
from repro.workload.ground_truth import GroundTruth
from repro.workload.oracle import vulnerable_sites

__all__ = ["fix_site", "break_site", "extend_chain"]


def _replace_unit(
    workload: Workload,
    new_unit: CodeUnit,
    index_map: dict[int, int],
) -> Workload:
    """Swap one unit into the workload, remapping its sites and re-deriving
    truth and profiles for it from the oracle."""
    old_unit = workload.unit(new_unit.unit_id)
    new_truth_for_unit = vulnerable_sites(new_unit)

    sites: list[SinkSite] = []
    vulnerable: set[SinkSite] = set()
    profiles: dict[SinkSite, SiteProfile] = {}
    for site in workload.truth.sites:
        profile = workload.profiles[site]
        if site.unit_id != new_unit.unit_id:
            sites.append(site)
            if site in workload.truth.vulnerable:
                vulnerable.add(site)
            profiles[site] = profile
            continue
        new_index = index_map[site.statement_index]
        moved = SinkSite(site.unit_id, new_index, site.vuln_type)
        sites.append(moved)
        is_vulnerable = moved in new_truth_for_unit
        if is_vulnerable:
            vulnerable.add(moved)
        sanitizers = [
            s
            for s in new_unit.statements[:new_index]
            if s.kind is StatementKind.SANITIZE
        ]
        profiles[moved] = SiteProfile(
            vuln_type=profile.vuln_type,
            vulnerable=is_vulnerable,
            chain_length=profile.chain_length,
            sanitizer_present=bool(sanitizers),
            cross_class_sanitizer=(
                is_vulnerable
                and any(s.vuln_type is not moved.vuln_type for s in sanitizers)
            ),
            difficulty=profile.difficulty,
        )

    units = tuple(
        new_unit if unit.unit_id == new_unit.unit_id else unit
        for unit in workload.units
    )
    del old_unit
    return Workload(
        name=workload.name,
        units=units,
        truth=GroundTruth.from_sites(sites, vulnerable),
        profiles=profiles,
        config=workload.config,
    )


def _fresh_variable(statements: Iterable[Statement], stem: str) -> str:
    """A variable name none of ``statements`` defines.

    Takes the raw statements rather than a :class:`CodeUnit` so callers
    building a unit incrementally (``extend_chain``) can probe candidate
    names without re-validating the whole unit on every hop.
    """
    existing = {s.target for s in statements if s.target is not None}
    candidate = stem
    counter = 0
    while candidate in existing:
        counter += 1
        candidate = f"{stem}{counter}"
    return candidate


def _require_sink(workload: Workload, site: SinkSite) -> tuple[CodeUnit, Statement]:
    unit = workload.unit(site.unit_id)
    statement = unit.statement_at(site.statement_index)
    if statement.kind is not StatementKind.SINK:
        raise WorkloadError(f"{site} does not point at a sink statement")
    return unit, statement


def fix_site(workload: Workload, site: SinkSite) -> Workload:
    """Fix a vulnerable site by sanitizing its input right before the sink.

    Inserts ``v' := sanitize[class](v)`` immediately above the sink and
    rewires the sink to read ``v'`` — the minimal, idiomatic patch.  Raises
    when the site is already safe (fixing it would silently change nothing,
    which callers should know).
    """
    if not workload.truth.is_vulnerable(site):
        raise WorkloadError(f"{site} is already safe; nothing to fix")
    unit, sink = _require_sink(workload, site)
    fixed_var = _fresh_variable(unit.statements, "patched")
    sanitize = Statement(
        StatementKind.SANITIZE,
        target=fixed_var,
        sources=(sink.sources[0],),
        vuln_type=site.vuln_type,
    )
    new_sink = Statement(
        StatementKind.SINK, sources=(fixed_var,), vuln_type=sink.vuln_type
    )
    statements = list(unit.statements)
    statements[site.statement_index : site.statement_index + 1] = [sanitize, new_sink]
    index_map = {
        old: old if old < site.statement_index else old + 1
        for old in range(len(unit.statements))
    }
    new_unit = CodeUnit(unit_id=unit.unit_id, statements=tuple(statements))
    return _replace_unit(workload, new_unit, index_map)


def break_site(workload: Workload, site: SinkSite) -> Workload:
    """Introduce a regression: disable the sanitizer protecting a safe site.

    Every same-class sanitizer above the sink is downgraded to a plain
    assignment (the classic "refactoring dropped the escape call" bug).
    Raises when the site is already vulnerable or no same-class sanitizer
    protects it (a clean-data site cannot be broken this way).
    """
    if workload.truth.is_vulnerable(site):
        raise WorkloadError(f"{site} is already vulnerable")
    unit, _ = _require_sink(workload, site)
    statements = list(unit.statements)
    downgraded = 0
    for index in range(site.statement_index):
        statement = statements[index]
        if (
            statement.kind is StatementKind.SANITIZE
            and statement.vuln_type is site.vuln_type
        ):
            statements[index] = Statement(
                StatementKind.ASSIGN,
                target=statement.target,
                sources=statement.sources,
            )
            downgraded += 1
    if downgraded == 0:
        raise WorkloadError(
            f"{site} is safe because its data is clean, not because of a "
            "sanitizer; cannot introduce a regression by removing one"
        )
    identity_map = {old: old for old in range(len(unit.statements))}
    new_unit = CodeUnit(unit_id=unit.unit_id, statements=tuple(statements))
    return _replace_unit(workload, new_unit, identity_map)


def extend_chain(workload: Workload, site: SinkSite, hops: int = 2) -> Workload:
    """Make a site harder: insert ``hops`` pass-through assignments above
    the sink.  Truth is unchanged (assignments preserve taint); depth-
    budgeted analyzers may now miss a vulnerable site they used to find.
    """
    if hops < 1:
        raise WorkloadError(f"hops={hops} must be >= 1")
    unit, sink = _require_sink(workload, site)
    statements = list(unit.statements)
    current = sink.sources[0]
    inserted: list[Statement] = []
    for hop in range(hops):
        nxt = _fresh_variable(statements + inserted, f"hop{hop}")
        inserted.append(
            Statement(StatementKind.ASSIGN, target=nxt, sources=(current,))
        )
        current = nxt
    new_sink = Statement(
        StatementKind.SINK, sources=(current,), vuln_type=sink.vuln_type
    )
    statements[site.statement_index : site.statement_index + 1] = inserted + [new_sink]
    index_map = {
        old: old if old < site.statement_index else old + hops
        for old in range(len(unit.statements))
    }
    new_unit = CodeUnit(unit_id=unit.unit_id, statements=tuple(statements))
    return _replace_unit(workload, new_unit, index_map)

"""Columnar (batched) shard synthesis — the generation hot path.

:func:`repro.workload.generator.generate_workload_scalar` draws every
site's randomness one ``Generator`` call at a time and validates every
statement object it builds.  That is the right *reference* implementation —
obviously correct, unit-testable, slow — but at campaign scale it is the
bottleneck: ``BENCH_shard.json`` showed ~4k units/s flat from 2k to 1M
units while the vectorized metric side sustains ~558k resamples/s.

This module replaces the hot path without replacing the contract.  It
draws a whole shard's randomness as bulk PCG64 words, decodes them into
*columnar* site records (numpy arrays: type codes, vulnerable/decoy
flags, chain lengths, branch bitmasks, sanitizer codes), labels the
ground truth with one vectorized pass, and only materializes scalar
:class:`~repro.workload.code_model.CodeUnit` /
:class:`~repro.workload.code_model.Statement` objects at the boundary
where tools consume them.

Parity contract
---------------
The batch path is **byte-identical** to the scalar generator for every
config it supports: same ``derive_seed`` stream, same draw-for-draw RNG
consumption, same statement objects, same ground truth, same profiles.
This works because every scalar draw maps deterministically onto the raw
64-bit PCG64 word stream:

- ``rng.random()`` consumes one full word: ``(word >> 11) * 2**-53``;
- ``rng.integers(lo, hi)`` (spans below 2**32) runs 32-bit Lemire
  rejection sampling through PCG64's persistent half-word cache: the
  *low* half of a fresh word is used first, the high half is cached
  across calls (including across intervening ``random()`` calls);
- ``rng.choice(n, p=weights)`` consumes one ``random()`` word and maps
  it through ``searchsorted`` on the normalized cumulative weights.

The decoder reproduces all three exactly — including Lemire rejection
redraws and the zero-span case that consumes nothing — so the boundary
walk lands on the same words the scalar generator would.  The contract
is guarded by ``tests/workload/test_batch_parity.py`` (all registered
ecosystems, ragged shards, isolated regeneration) and by the
generation smoke in ``tools/check_bench.py``.

Configs the decoder cannot represent (chains longer than 64 hops, or
integer spans at or above 2**32, which switch numpy to a different
Lemire path) are rejected by :func:`supports_batch`;
:func:`~repro.workload.generator.generate_workload` falls back to the
scalar path for those, so the dispatch is always safe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import derive_seed
from repro.workload.code_model import (
    CodeUnit,
    SinkSite,
    Statement,
    StatementKind,
    trusted_statement,
    trusted_unit,
)
from repro.workload.generator import (
    SiteProfile,
    Workload,
    WorkloadConfig,
)
from repro.workload.ground_truth import GroundTruth
from repro.workload.taxonomy import VulnerabilityType

__all__ = [
    "ShardColumns",
    "supports_batch",
    "decode_columns",
    "materialize_workload",
    "generate_workload_batch",
]

_MASK32 = 0xFFFFFFFF
_DOUBLE_SCALE = 2.0**-53
_ENUM_ORDER: tuple[VulnerabilityType, ...] = tuple(VulnerabilityType)

#: Longest chain the branch/order bitmask columns can hold (one bit per hop).
MAX_CHAIN = 64


def supports_batch(config: WorkloadConfig) -> bool:
    """Whether :func:`decode_columns` can reproduce ``config`` exactly.

    The decoder represents per-hop branch decisions as 64-bit masks and
    emulates numpy's *32-bit* Lemire integer path, so it declines chains
    longer than :data:`MAX_CHAIN` hops and integer spans at or above
    2**32 (where numpy switches to the 64-bit path).  Everything the
    registered ecosystems generate is supported; the scalar generator
    remains the fallback for the rest.
    """
    s_lo, s_hi = config.sites_per_unit
    c_lo, c_hi = config.chain_length_range
    if c_hi > MAX_CHAIN:
        return False
    if (s_hi - s_lo) > _MASK32 or (c_hi - c_lo) > _MASK32:
        return False
    return True


@dataclass(frozen=True)
class ShardColumns:
    """One shard's generated content as parallel numpy columns.

    Everything the scalar generator decides per site is recorded here as
    an array element instead of an object graph: the mini-IR statements
    exist only implicitly (site shape columns) until
    :func:`materialize_workload` builds them at the tool boundary.

    Site rows are grouped by unit in generation order: unit ``u`` owns
    rows ``unit_site_offset[u] : unit_site_offset[u] + unit_n_sites[u]``.
    """

    config: WorkloadConfig
    """The config these columns were decoded from."""
    type_order: tuple[VulnerabilityType, ...]
    """Vulnerability types in ``config.type_mix`` order; ``site_type``
    codes index into this tuple."""
    unit_n_sites: np.ndarray
    """int64 ``(n_units,)`` — sites per unit."""
    unit_site_offset: np.ndarray
    """int64 ``(n_units,)`` — index of each unit's first site row."""
    site_unit: np.ndarray
    """int64 ``(n_sites,)`` — owning unit index of each site."""
    site_in_unit: np.ndarray
    """int64 ``(n_sites,)`` — site index within its unit (names the
    ``s{i}_v{j}`` variable prefix)."""
    site_type: np.ndarray
    """int8 ``(n_sites,)`` — code into :attr:`type_order`."""
    site_vulnerable: np.ndarray
    """bool ``(n_sites,)`` — generator intent: truly vulnerable."""
    site_decoy: np.ndarray
    """bool ``(n_sites,)`` — safe site with a same-class sanitizer."""
    site_chain: np.ndarray
    """int64 ``(n_sites,)`` — propagation chain length (hops)."""
    site_branch_mask: np.ndarray
    """uint64 ``(n_sites,)`` — bit ``h`` set: hop ``h`` is a two-operand
    concat (const + concat statements) instead of a plain assign."""
    site_order_mask: np.ndarray
    """uint64 ``(n_sites,)`` — for branch hops, bit ``h`` set: operands
    are ``(tainted, constant)``; clear: ``(constant, tainted)``."""
    site_cross_type: np.ndarray
    """int8 ``(n_sites,)`` — taxonomy-order index of the cross-class
    sanitizer's type, or ``-1`` when the site has none."""
    site_post_assign: np.ndarray
    """bool ``(n_sites,)`` — decoy sites: a propagation assign sits
    between sanitizer and sink."""
    site_statements: np.ndarray
    """int64 ``(n_sites,)`` — statements the site materializes to."""
    site_sink_index: np.ndarray
    """int64 ``(n_sites,)`` — the sink's statement index *within its
    unit* (the :class:`~repro.workload.code_model.SinkSite` identity)."""
    site_difficulty: np.ndarray
    """float64 ``(n_sites,)`` — the profile difficulty in [0, 1]."""

    @property
    def n_units(self) -> int:
        """Units in the shard."""
        return int(self.unit_n_sites.shape[0])

    @property
    def n_sites(self) -> int:
        """Total analysis sites across all units."""
        return int(self.site_type.shape[0])

    @property
    def site_cross(self) -> np.ndarray:
        """bool ``(n_sites,)`` — site carries a cross-class sanitizer."""
        return self.site_cross_type >= 0

    def unit_ids(self) -> list[str]:
        """Unit ids in unit order (``{name}-u{index:05d}``)."""
        name = self.config.name
        return [f"{name}-u{index:05d}" for index in range(self.n_units)]

    def dependency_mask(self, dependency_fraction: float) -> np.ndarray:
        """bool ``(n_units,)`` — which units are dependency-shaped.

        Delegates to :func:`repro.tools.sca_matcher.dependency_mask`, the
        same seed-free hash partition every SCA-style tool sees.  Imported
        lazily so the workload layer keeps no module-level dependency on
        the tools layer.
        """
        from repro.tools.sca_matcher import dependency_mask

        return dependency_mask(self.unit_ids(), dependency_fraction)


def decode_columns(config: WorkloadConfig) -> ShardColumns:
    """Decode ``config``'s full RNG stream into :class:`ShardColumns`.

    Draws raw 64-bit PCG64 words in bulk, precomputes every per-word
    derived value vectorized (uniform doubles, threshold comparisons,
    type codes), then walks the word stream once in generation order to
    find the data-dependent draw boundaries the scalar generator would
    produce.  Word-for-word identical to
    :func:`~repro.workload.generator.generate_workload_scalar` — see the
    module docstring for the stream emulation details.

    Raises :class:`ValueError` for configs outside
    :func:`supports_batch`.
    """
    if not supports_batch(config):
        raise ValueError(
            f"config {config.name!r} is outside the batch decoder's range "
            f"(chains > {MAX_CHAIN} hops or integer spans >= 2**32)"
        )

    types = list(config.type_mix)
    weights = np.array([config.type_mix[t] for t in types], dtype=float)
    p = weights / weights.sum()
    cdf = p.cumsum()
    cdf /= cdf[-1]
    enum_code = [_ENUM_ORDER.index(t) for t in types]

    s_lo, s_hi = config.sites_per_unit
    c_lo, c_hi = config.chain_length_range
    s_span = s_hi - s_lo
    c_span = c_hi - c_lo
    n_other = len(_ENUM_ORDER) - 1
    prevalence = config.prevalence
    decoy_fraction = config.decoy_fraction
    ccr = config.cross_class_sanitizer_rate
    n_units = config.n_units

    bit_generator = np.random.PCG64(derive_seed(config.seed, f"workload:{config.name}"))

    # Precomputed per-word columns, extended chunk-at-a-time.  Plain
    # Python lists: single-element indexing during the walk is several
    # times faster than numpy scalar indexing.
    uniforms: list[float] = []
    words: list[int] = []
    type_codes: list[int] = []

    avg_sites = (s_lo + s_hi) / 2.0
    avg_chain = (c_lo + c_hi) / 2.0
    words_per_unit = 1.0 + avg_sites * (4.0 + 1.3 * avg_chain)
    first_chunk = int(n_units * words_per_unit * 1.15) + 64
    refill_chunk = max(1024, first_chunk // 4)

    def refill(n_words: int) -> None:
        raw = bit_generator.random_raw(n_words)
        uniform_chunk = (raw >> np.uint64(11)) * _DOUBLE_SCALE
        words.extend(raw.tolist())
        uniforms.extend(uniform_chunk.tolist())
        type_codes.extend(cdf.searchsorted(uniform_chunk, side="right").tolist())

    refill(first_chunk)

    # Stream cursor: `pos` indexes the next unconsumed 64-bit word;
    # integer draws additionally share PCG64's persistent half-word
    # cache (`has32`/`cached32`), exactly like numpy's Generator.
    pos = 0
    has32 = False
    cached32 = 0

    def next32() -> int:
        nonlocal pos, has32, cached32
        if has32:
            has32 = False
            return cached32
        if pos >= len(words):
            refill(refill_chunk)
        word = words[pos]
        pos += 1
        has32 = True
        cached32 = word >> 32
        return word & _MASK32

    def draw_int(lo: int, span: int) -> int:
        # numpy's buffered 32-bit Lemire bounded draw, including the
        # rejection loop and the draw-free zero-span case.
        if span == 0:
            return lo
        rng_excl = span + 1
        m = next32() * rng_excl
        leftover = m & _MASK32
        if leftover < rng_excl:
            threshold = (_MASK32 - span) % rng_excl
            while leftover < threshold:
                m = next32() * rng_excl
                leftover = m & _MASK32
        return lo + (m >> 32)

    unit_sites: list[int] = []
    col_type: list[int] = []
    col_vuln: list[bool] = []
    col_decoy: list[bool] = []
    col_chain: list[int] = []
    col_branch: list[int] = []
    col_order: list[int] = []
    col_cross: list[int] = []
    col_post: list[bool] = []

    site_budget = 4 + 2 * c_hi  # worst-case full words per site

    for _ in range(n_units):
        n_sites = draw_int(s_lo, s_span)
        unit_sites.append(n_sites)
        for _ in range(n_sites):
            if pos + site_budget > len(words):
                refill(refill_chunk)
            type_code = type_codes[pos]
            pos += 1
            vulnerable = uniforms[pos] < prevalence
            pos += 1
            if vulnerable:
                decoy = False
            else:
                decoy = uniforms[pos] < decoy_fraction
                pos += 1
            chain = draw_int(c_lo, c_span)
            branch_mask = 0
            order_mask = 0
            bit = 1
            for _ in range(chain):
                if uniforms[pos] < 0.3:
                    pos += 1
                    branch_mask |= bit
                    if uniforms[pos] < 0.5:
                        order_mask |= bit
                    pos += 1
                else:
                    pos += 1
                bit <<= 1
            cross_code = -1
            if vulnerable:
                cross = uniforms[pos] < ccr
                pos += 1
                if cross:
                    relative = draw_int(0, n_other - 1)
                    own = enum_code[type_code]
                    cross_code = relative if relative < own else relative + 1
            post = False
            if decoy:
                post = uniforms[pos] < 0.5
                pos += 1
            col_type.append(type_code)
            col_vuln.append(vulnerable)
            col_decoy.append(decoy)
            col_chain.append(chain)
            col_branch.append(branch_mask)
            col_order.append(order_mask)
            col_cross.append(cross_code)
            col_post.append(post)

    unit_n_sites = np.asarray(unit_sites, dtype=np.int64)
    site_type = np.asarray(col_type, dtype=np.int8)
    site_vulnerable = np.asarray(col_vuln, dtype=bool)
    site_decoy = np.asarray(col_decoy, dtype=bool)
    site_chain = np.asarray(col_chain, dtype=np.int64)
    site_branch_mask = np.asarray(col_branch, dtype=np.uint64)
    site_order_mask = np.asarray(col_order, dtype=np.uint64)
    site_cross_type = np.asarray(col_cross, dtype=np.int8)
    site_post_assign = np.asarray(col_post, dtype=bool)

    unit_site_offset = np.concatenate(([0], np.cumsum(unit_n_sites)[:-1]))
    site_unit = np.repeat(np.arange(n_units, dtype=np.int64), unit_n_sites)
    site_in_unit = (
        np.arange(site_type.shape[0], dtype=np.int64)
        - np.repeat(unit_site_offset, unit_n_sites)
    )

    # Statement layout, vectorized: head + chain hops (+1 const per
    # branch hop) + optional sanitizers/post-assign + sink.
    branch_hops = np.bitwise_count(site_branch_mask).astype(np.int64)
    site_statements = (
        2
        + site_chain
        + branch_hops
        + (site_cross_type >= 0).astype(np.int64)
        + site_decoy.astype(np.int64)
        + site_post_assign.astype(np.int64)
    )
    ends = np.cumsum(site_statements)
    unit_stmt_start = (ends - site_statements)[unit_site_offset]
    site_sink_index = ends - np.repeat(unit_stmt_start, unit_n_sites) - 1

    # Difficulty, same float expression order as the scalar generator.
    span = max(c_hi - c_lo, 1)
    base = (site_chain - c_lo) / span
    bonus = np.where(site_cross_type >= 0, 0.2, 0.0)
    site_difficulty = np.minimum(1.0, 0.8 * base + bonus)

    columns = ShardColumns(
        config=config,
        type_order=tuple(types),
        unit_n_sites=unit_n_sites,
        unit_site_offset=unit_site_offset,
        site_unit=site_unit,
        site_in_unit=site_in_unit,
        site_type=site_type,
        site_vulnerable=site_vulnerable,
        site_decoy=site_decoy,
        site_chain=site_chain,
        site_branch_mask=site_branch_mask,
        site_order_mask=site_order_mask,
        site_cross_type=site_cross_type,
        site_post_assign=site_post_assign,
        site_statements=site_statements,
        site_sink_index=site_sink_index,
        site_difficulty=site_difficulty,
    )
    _verify_labels(columns)
    return columns


def _verify_labels(columns: ShardColumns) -> None:
    """Vectorized generator/oracle consistency pass.

    The scalar generator runs the full taint oracle over every unit and
    asserts it matches the intended labels.  On the columnar record the
    oracle's verdict is a closed-form function of the site shape: taint
    reaches the sink iff the head is an INPUT (vulnerable or decoy
    sites) and no same-class sanitizer interrupts the chain (decoy
    sites sanitize their own class; cross-class sanitizers by
    construction do not).  One array expression labels the whole shard;
    any disagreement with the generator's intent raises exactly like
    the scalar path.
    """
    tainted_head = columns.site_vulnerable | columns.site_decoy
    enum_codes = np.array(
        [_ENUM_ORDER.index(t) for t in columns.type_order], dtype=np.int8
    )
    own_code = enum_codes[columns.site_type.astype(np.int64)]
    same_class_sanitizer = columns.site_decoy | (
        columns.site_cross_type == own_code
    )
    oracle_says = tainted_head & ~same_class_sanitizer
    if not np.array_equal(oracle_says, columns.site_vulnerable):
        index = int(np.nonzero(oracle_says != columns.site_vulnerable)[0][0])
        raise AssertionError(
            f"generator/oracle disagreement at site row {index}: "
            f"intended vulnerable={bool(columns.site_vulnerable[index])}, "
            f"oracle={bool(oracle_says[index])}"
        )


# Materialization caches, shared across shards (all keys are pure value
# tuples and all cached objects are immutable, so sharing across threads
# and successive shards is safe; same-key rebuilds are identical).
_NAME_CACHE: dict[tuple[int, int], str] = {}
_SITE_CACHE: dict[tuple, tuple[Statement, ...]] = {}
_PROFILE_CACHE: dict[tuple, SiteProfile] = {}
_SITE_CACHE_LIMIT = 1 << 18


def _var(site_index: int, counter: int) -> str:
    name = _NAME_CACHE.get((site_index, counter))
    if name is None:
        name = f"s{site_index}_v{counter}"
        _NAME_CACHE[(site_index, counter)] = name
    return name


def _site_statements(
    site_index: int,
    vuln_type: VulnerabilityType,
    vulnerable: bool,
    decoy: bool,
    chain: int,
    branch_mask: int,
    order_mask: int,
    cross_code: int,
    post: bool,
) -> tuple[Statement, ...]:
    """Build one site's statement tuple from its columnar record.

    Mirrors ``generator._build_site_statements`` exactly, with the
    randomness already decoded into the mask arguments.
    """
    statements: list[Statement] = []
    counter = 0
    current = _var(site_index, counter)
    counter += 1
    head = StatementKind.INPUT if (vulnerable or decoy) else StatementKind.CONST
    statements.append(trusted_statement(head, current, (), None))

    bit = 1
    for _ in range(chain):
        nxt = _var(site_index, counter)
        counter += 1
        if branch_mask & bit:
            constant = _var(site_index, counter)
            counter += 1
            statements.append(
                trusted_statement(StatementKind.CONST, constant, (), None)
            )
            operands = (
                (current, constant) if order_mask & bit else (constant, current)
            )
            statements.append(
                trusted_statement(StatementKind.CONCAT, nxt, operands, None)
            )
        else:
            statements.append(
                trusted_statement(StatementKind.ASSIGN, nxt, (current,), None)
            )
        current = nxt
        bit <<= 1

    if cross_code >= 0:
        nxt = _var(site_index, counter)
        counter += 1
        statements.append(
            trusted_statement(
                StatementKind.SANITIZE, nxt, (current,), _ENUM_ORDER[cross_code]
            )
        )
        current = nxt

    if decoy:
        nxt = _var(site_index, counter)
        counter += 1
        statements.append(
            trusted_statement(StatementKind.SANITIZE, nxt, (current,), vuln_type)
        )
        current = nxt
        if post:
            nxt = _var(site_index, counter)
            counter += 1
            statements.append(
                trusted_statement(StatementKind.ASSIGN, nxt, (current,), None)
            )
            current = nxt

    statements.append(
        trusted_statement(StatementKind.SINK, None, (current,), vuln_type)
    )
    return tuple(statements)


def materialize_workload(columns: ShardColumns) -> Workload:
    """Build the scalar :class:`Workload` object graph from columns.

    The boundary where tools take over: statements, units, sink sites,
    profiles and ground truth come out equal (``==``) to the scalar
    generator's output for the same config.  Repeated site shapes share
    one interned statement tuple, so materialization cost tracks the
    number of *distinct* shapes, not the number of sites.
    """
    config = columns.config
    type_order = columns.type_order

    rows = zip(
        columns.site_in_unit.tolist(),
        columns.site_type.tolist(),
        columns.site_vulnerable.tolist(),
        columns.site_decoy.tolist(),
        columns.site_chain.tolist(),
        columns.site_branch_mask.tolist(),
        columns.site_order_mask.tolist(),
        columns.site_cross_type.tolist(),
        columns.site_post_assign.tolist(),
        columns.site_sink_index.tolist(),
        columns.site_difficulty.tolist(),
    )

    name = config.name
    units: list[CodeUnit] = []
    profiles: dict[SinkSite, SiteProfile] = {}
    all_sites: list[SinkSite] = []
    vulnerable_sites: list[SinkSite] = []

    site_cache_get = _SITE_CACHE.get
    profile_cache_get = _PROFILE_CACHE.get
    next_row = rows.__next__
    append_site = all_sites.append

    for unit_index, n_sites in enumerate(columns.unit_n_sites.tolist()):
        unit_id = f"{name}-u{unit_index:05d}"
        unit_statements: list[Statement] = []
        for _ in range(n_sites):
            row = next_row()
            # Cache keys carry the VulnerabilityType member itself (not
            # the per-config mix-order code) and, for profiles, the
            # realized difficulty, so entries are valid across configs
            # with different type orders and chain ranges.
            vuln_type = type_order[row[1]]
            key = (row[0], vuln_type) + row[2:9]
            site_stmts = site_cache_get(key)
            if site_stmts is None:
                site_stmts = _site_statements(
                    row[0],
                    vuln_type,
                    row[2],
                    row[3],
                    row[4],
                    row[5],
                    row[6],
                    row[7],
                    row[8],
                )
                if len(_SITE_CACHE) < _SITE_CACHE_LIMIT:
                    _SITE_CACHE[key] = site_stmts
            unit_statements.extend(site_stmts)

            site = SinkSite(unit_id, row[9], vuln_type)
            append_site(site)
            if row[2]:
                vulnerable_sites.append(site)
            profile_key = (vuln_type, row[2], row[3], row[4], row[7] >= 0, row[10])
            profile = profile_cache_get(profile_key)
            if profile is None:
                profile = SiteProfile(
                    vuln_type=vuln_type,
                    vulnerable=row[2],
                    chain_length=row[4],
                    sanitizer_present=row[3] or row[7] >= 0,
                    cross_class_sanitizer=row[7] >= 0,
                    difficulty=row[10],
                )
                _PROFILE_CACHE[profile_key] = profile
            profiles[site] = profile
        units.append(trusted_unit(unit_id, tuple(unit_statements)))

    truth = GroundTruth.trusted(tuple(all_sites), vulnerable_sites)
    return Workload(
        name=name,
        units=tuple(units),
        truth=truth,
        profiles=profiles,
        config=config,
    )


def generate_workload_batch(config: WorkloadConfig) -> Workload:
    """Generate a workload through the columnar batch path.

    Equal output to
    :func:`~repro.workload.generator.generate_workload_scalar` for every
    supported config (see the module docstring's parity contract);
    raises :class:`ValueError` outside :func:`supports_batch`.
    """
    return materialize_workload(decode_columns(config))

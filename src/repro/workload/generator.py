"""Synthetic workload generator.

The original study reused workloads of real web services with known
vulnerabilities.  We cannot ship those, so this generator produces code units
in the mini-IR of :mod:`repro.workload.code_model` with precisely
controllable *prevalence* (fraction of vulnerable sites), *type mix* and
*difficulty* — the three workload characteristics the paper's analysis
depends on.  Ground truth is derived from the exact taint oracle, never
asserted by fiat, so generator bugs cannot silently desynchronize truth and
code.

Three site templates are generated:

- **vulnerable**: input → propagation chain → sink, with no sanitizer for
  the sink's class (sometimes a sanitizer for a *different* class, to bait
  tools that match sanitizer names without checking the class);
- **sanitized decoy**: input → chain → correct sanitizer → chain → sink —
  safe, but a false-positive magnet for flow-insensitive tools;
- **clean**: constants only — safe and boring, as most real code is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._rng import spawn
from repro.errors import ConfigurationError
from repro.workload.code_model import CodeUnit, SinkSite, Statement, StatementKind
from repro.workload.ground_truth import GroundTruth
from repro.workload.oracle import vulnerable_sites
from repro.workload.taxonomy import VulnerabilityType

__all__ = [
    "SiteProfile",
    "WorkloadConfig",
    "Workload",
    "generate_workload",
    "generate_workload_scalar",
]


@dataclass(frozen=True, slots=True)
class SiteProfile:
    """Generation-time characteristics of one analysis site.

    ``difficulty`` in [0, 1] summarizes how hard the site is to analyze
    (longer propagation chains and cross-class sanitizer noise are harder);
    the detection tools consume it.
    """

    vuln_type: VulnerabilityType
    vulnerable: bool
    chain_length: int
    sanitizer_present: bool
    cross_class_sanitizer: bool
    difficulty: float


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic workload.

    ``prevalence`` is the expected fraction of vulnerable sites;
    ``decoy_fraction`` the fraction of *safe* sites that are sanitized decoys
    (the rest are clean); ``type_mix`` the distribution over vulnerability
    classes (defaults to uniform over the taxonomy).
    """

    n_units: int = 500
    sites_per_unit: tuple[int, int] = (1, 3)
    prevalence: float = 0.15
    decoy_fraction: float = 0.5
    chain_length_range: tuple[int, int] = (1, 6)
    cross_class_sanitizer_rate: float = 0.25
    type_mix: dict[VulnerabilityType, float] = field(
        default_factory=lambda: {v: 1.0 / len(VulnerabilityType) for v in VulnerabilityType}
    )
    seed: int = 0
    name: str = "synthetic"
    ecosystem: str = "web-services"
    """Which ecosystem regime this workload belongs to (a registry name, see
    :mod:`repro.workload.ecosystems`).  Identity only: generation streams
    never consume it, so the default ecosystem is bit-identical to configs
    that predate the field."""

    def __post_init__(self) -> None:
        if not self.ecosystem:
            raise ConfigurationError("ecosystem must be non-empty")
        if self.n_units <= 0:
            raise ConfigurationError(f"n_units={self.n_units} must be positive")
        low, high = self.sites_per_unit
        if not (1 <= low <= high):
            raise ConfigurationError(f"sites_per_unit={self.sites_per_unit} must be 1 <= lo <= hi")
        if not 0.0 < self.prevalence < 1.0:
            raise ConfigurationError(f"prevalence={self.prevalence} must be in (0, 1)")
        if not 0.0 <= self.decoy_fraction <= 1.0:
            raise ConfigurationError(f"decoy_fraction={self.decoy_fraction} must be in [0, 1]")
        c_low, c_high = self.chain_length_range
        if not (1 <= c_low <= c_high):
            raise ConfigurationError(
                f"chain_length_range={self.chain_length_range} must be 1 <= lo <= hi"
            )
        if not 0.0 <= self.cross_class_sanitizer_rate <= 1.0:
            raise ConfigurationError("cross_class_sanitizer_rate must be in [0, 1]")
        if not self.type_mix:
            raise ConfigurationError("type_mix must not be empty")
        total = sum(self.type_mix.values())
        if total <= 0:
            raise ConfigurationError("type_mix weights must sum to a positive number")
        if any(weight < 0 for weight in self.type_mix.values()):
            raise ConfigurationError("type_mix weights must be non-negative")


@dataclass(frozen=True)
class Workload:
    """A generated benchmark workload: code, ground truth and site profiles."""

    name: str
    units: tuple[CodeUnit, ...]
    truth: GroundTruth
    profiles: dict[SinkSite, SiteProfile]
    config: WorkloadConfig

    def unit(self, unit_id: str) -> CodeUnit:
        """Look up a unit by id (O(1) after the first call)."""
        try:
            index = self._unit_index
        except AttributeError:
            index = {unit.unit_id: unit for unit in self.units}
            # Lazy cache on a frozen dataclass; pure function of `units`.
            object.__setattr__(self, "_unit_index", index)
        try:
            return index[unit_id]
        except KeyError:
            raise ConfigurationError(f"unknown unit {unit_id!r}") from None

    @property
    def n_sites(self) -> int:
        """Total number of analysis sites."""
        return self.truth.n_sites

    @property
    def prevalence(self) -> float:
        """Realized (not configured) prevalence."""
        return self.truth.prevalence

    @property
    def ecosystem(self) -> str:
        """The ecosystem regime this workload was generated under."""
        return self.config.ecosystem


def _choose_type(
    rng: np.random.Generator, mix: dict[VulnerabilityType, float]
) -> VulnerabilityType:
    types = list(mix)
    weights = np.array([mix[t] for t in types], dtype=float)
    weights = weights / weights.sum()
    return types[int(rng.choice(len(types), p=weights))]


def _difficulty(chain_length: int, config: WorkloadConfig, cross_class: bool) -> float:
    low, high = config.chain_length_range
    span = max(high - low, 1)
    base = (chain_length - low) / span
    bonus = 0.2 if cross_class else 0.0
    return min(1.0, 0.8 * base + bonus)


def _build_site_statements(
    rng: np.random.Generator,
    prefix: str,
    vuln_type: VulnerabilityType,
    vulnerable: bool,
    decoy: bool,
    config: WorkloadConfig,
) -> tuple[list[Statement], SiteProfile]:
    """Emit the statements for one analysis site and its profile.

    The returned statements use variables namespaced by ``prefix`` so several
    sites coexist in one unit without interference.
    """
    low, high = config.chain_length_range
    chain_length = int(rng.integers(low, high + 1))
    statements: list[Statement] = []
    var_counter = 0

    def fresh() -> str:
        nonlocal var_counter
        name = f"{prefix}_v{var_counter}"
        var_counter += 1
        return name

    current = fresh()
    if vulnerable or decoy:
        statements.append(Statement(StatementKind.INPUT, target=current))
    else:
        statements.append(Statement(StatementKind.CONST, target=current))

    cross_class = False
    for hop in range(chain_length):
        nxt = fresh()
        if rng.random() < 0.3:
            constant = fresh()
            statements.append(Statement(StatementKind.CONST, target=constant))
            # Operand order is randomized: "tainted + constant" and
            # "constant + tainted" are both idiomatic, and field-insensitive
            # analyses treat them differently.
            operands = (
                (current, constant) if rng.random() < 0.5 else (constant, current)
            )
            statements.append(
                Statement(StatementKind.CONCAT, target=nxt, sources=operands)
            )
        else:
            statements.append(Statement(StatementKind.ASSIGN, target=nxt, sources=(current,)))
        current = nxt

    if vulnerable and rng.random() < config.cross_class_sanitizer_rate:
        # Sanitizer for a *different* class: the site stays vulnerable but
        # tools that pattern-match sanitizer calls get fooled.
        other_types = [t for t in VulnerabilityType if t is not vuln_type]
        other = other_types[int(rng.integers(len(other_types)))]
        nxt = fresh()
        statements.append(
            Statement(StatementKind.SANITIZE, target=nxt, sources=(current,), vuln_type=other)
        )
        current = nxt
        cross_class = True

    if decoy:
        nxt = fresh()
        statements.append(
            Statement(
                StatementKind.SANITIZE, target=nxt, sources=(current,), vuln_type=vuln_type
            )
        )
        current = nxt
        # Optional post-sanitizer propagation, so the sanitizer is not always
        # immediately adjacent to the sink.
        if rng.random() < 0.5:
            nxt = fresh()
            statements.append(Statement(StatementKind.ASSIGN, target=nxt, sources=(current,)))
            current = nxt

    statements.append(Statement(StatementKind.SINK, sources=(current,), vuln_type=vuln_type))
    profile = SiteProfile(
        vuln_type=vuln_type,
        vulnerable=vulnerable,
        chain_length=chain_length,
        sanitizer_present=decoy or cross_class,
        cross_class_sanitizer=cross_class,
        difficulty=_difficulty(chain_length, config, cross_class),
    )
    return statements, profile


def generate_workload(config: WorkloadConfig) -> Workload:
    """Generate a workload from ``config``, deterministically in its seed.

    Dispatches to the columnar batch path
    (:func:`repro.workload.columnar.generate_workload_batch`) whenever the
    config is within its range, falling back to
    :func:`generate_workload_scalar` otherwise.  The two paths are
    byte-identical for every supported config — same RNG stream, same
    statements, same ground truth — guarded by
    ``tests/workload/test_batch_parity.py``; the dispatch is therefore a
    pure wall-clock change, exactly like the vectorized bootstrap on the
    metric side.
    """
    from repro.workload.columnar import generate_workload_batch, supports_batch

    if supports_batch(config):
        return generate_workload_batch(config)
    return generate_workload_scalar(config)


def generate_workload_scalar(config: WorkloadConfig) -> Workload:
    """Generate a workload one RNG draw at a time — the reference path.

    The obviously-correct implementation the batch path is held to:
    ground truth is recomputed from the taint oracle over the generated
    units, and an internal consistency check asserts it matches the
    generator's intent for every site.
    """
    rng = spawn(config.seed, f"workload:{config.name}")
    units: list[CodeUnit] = []
    profiles: dict[SinkSite, SiteProfile] = {}
    intended_vulnerable: set[SinkSite] = set()
    all_sites: list[SinkSite] = []

    for unit_index in range(config.n_units):
        unit_id = f"{config.name}-u{unit_index:05d}"
        low, high = config.sites_per_unit
        n_sites = int(rng.integers(low, high + 1))
        statements: list[Statement] = []
        pending: list[tuple[int, SiteProfile]] = []  # (sink statement idx, profile)
        for site_index in range(n_sites):
            vuln_type = _choose_type(rng, config.type_mix)
            vulnerable = bool(rng.random() < config.prevalence)
            decoy = (not vulnerable) and bool(rng.random() < config.decoy_fraction)
            site_statements, profile = _build_site_statements(
                rng, f"s{site_index}", vuln_type, vulnerable, decoy, config
            )
            offset = len(statements)
            statements.extend(site_statements)
            sink_index = offset + len(site_statements) - 1
            pending.append((sink_index, profile))

        unit = CodeUnit(unit_id=unit_id, statements=tuple(statements))
        truth_for_unit = vulnerable_sites(unit)
        for sink_index, profile in pending:
            site = SinkSite(unit_id, sink_index, profile.vuln_type)
            oracle_says = site in truth_for_unit
            if oracle_says != profile.vulnerable:
                raise AssertionError(
                    f"generator/oracle disagreement at {site}: "
                    f"intended vulnerable={profile.vulnerable}, oracle={oracle_says}"
                )
            profiles[site] = profile
            all_sites.append(site)
            if profile.vulnerable:
                intended_vulnerable.add(site)
        units.append(unit)

    truth = GroundTruth.from_sites(all_sites, intended_vulnerable)
    return Workload(
        name=config.name,
        units=tuple(units),
        truth=truth,
        profiles=profiles,
        config=config,
    )

"""Synthetic vulnerability-detection workloads (the benchmark substrate)."""

from repro.workload.corpus import corpus_units, corpus_workload
from repro.workload.mutations import break_site, extend_chain, fix_site
from repro.workload.code_model import CodeUnit, SinkSite, Statement, StatementKind
from repro.workload.ecosystems import (
    DEFAULT_ECOSYSTEM,
    EcosystemProfile,
    all_ecosystems,
    ecosystem_names,
    get_ecosystem,
    register_ecosystem,
)
from repro.workload.columnar import (
    ShardColumns,
    decode_columns,
    generate_workload_batch,
    materialize_workload,
    supports_batch,
)
from repro.workload.generator import (
    SiteProfile,
    Workload,
    WorkloadConfig,
    generate_workload,
    generate_workload_scalar,
)
from repro.workload.ground_truth import GroundTruth
from repro.workload.sharded import (
    DEFAULT_SHARD_SIZE,
    ShardPlan,
    ShardSpec,
    plan_shards,
    shard_seed,
)
from repro.workload.oracle import is_site_vulnerable, taint_state_after, vulnerable_sites
from repro.workload.taxonomy import TRAITS, VulnerabilityTraits, VulnerabilityType

__all__ = [
    "corpus_units",
    "corpus_workload",
    "break_site",
    "extend_chain",
    "fix_site",
    "CodeUnit",
    "DEFAULT_ECOSYSTEM",
    "EcosystemProfile",
    "all_ecosystems",
    "ecosystem_names",
    "get_ecosystem",
    "register_ecosystem",
    "SinkSite",
    "Statement",
    "StatementKind",
    "SiteProfile",
    "Workload",
    "WorkloadConfig",
    "generate_workload",
    "generate_workload_scalar",
    "generate_workload_batch",
    "ShardColumns",
    "decode_columns",
    "materialize_workload",
    "supports_batch",
    "GroundTruth",
    "DEFAULT_SHARD_SIZE",
    "ShardPlan",
    "ShardSpec",
    "plan_shards",
    "shard_seed",
    "is_site_vulnerable",
    "taint_state_after",
    "vulnerable_sites",
    "TRAITS",
    "VulnerabilityTraits",
    "VulnerabilityType",
]

"""Exact taint oracle — defines the ground truth of a workload.

A sink is *vulnerable* exactly when external input can reach it without
passing through a sanitizer for the sink's vulnerability class.  The oracle
computes this with a full, per-class taint propagation over the unit, with no
depth limits and no approximations — the tools in :mod:`repro.tools` are
deliberately weaker (bounded depth, ignored sanitizers, probabilistic
payloads), which is what creates the FP/FN structure the metrics study needs.
"""

from __future__ import annotations

from repro.workload.code_model import CodeUnit, SinkSite, Statement, StatementKind
from repro.workload.taxonomy import VulnerabilityType

__all__ = ["taint_state_after", "vulnerable_sites", "is_site_vulnerable"]


def taint_state_after(unit: CodeUnit) -> list[dict[str, frozenset[VulnerabilityType]]]:
    """Per-statement taint environments.

    Returns a list with one entry per statement: the mapping from variable to
    the set of vulnerability classes for which it is still dangerous *after*
    that statement executes.  A variable absent from the mapping is clean.
    """
    all_types = frozenset(VulnerabilityType)
    environment: dict[str, frozenset[VulnerabilityType]] = {}
    states: list[dict[str, frozenset[VulnerabilityType]]] = []
    for statement in unit.statements:
        _apply(statement, environment, all_types)
        states.append(dict(environment))
    return states


def _apply(
    statement: Statement,
    environment: dict[str, frozenset[VulnerabilityType]],
    all_types: frozenset[VulnerabilityType],
) -> None:
    """Update ``environment`` in place with the effect of ``statement``."""
    kind = statement.kind
    if kind is StatementKind.INPUT:
        environment[statement.target] = all_types  # type: ignore[index]
    elif kind is StatementKind.CONST:
        environment.pop(statement.target, None)  # type: ignore[arg-type]
    elif kind is StatementKind.ASSIGN:
        taint = environment.get(statement.sources[0], frozenset())
        if taint:
            environment[statement.target] = taint  # type: ignore[index]
        else:
            environment.pop(statement.target, None)  # type: ignore[arg-type]
    elif kind is StatementKind.CONCAT:
        union: frozenset[VulnerabilityType] = frozenset()
        for source in statement.sources:
            union |= environment.get(source, frozenset())
        if union:
            environment[statement.target] = union  # type: ignore[index]
        else:
            environment.pop(statement.target, None)  # type: ignore[arg-type]
    elif kind is StatementKind.SANITIZE:
        taint = environment.get(statement.sources[0], frozenset())
        remaining = taint - {statement.vuln_type}
        if remaining:
            environment[statement.target] = remaining  # type: ignore[index]
        else:
            environment.pop(statement.target, None)  # type: ignore[arg-type]
    # SINK statements define nothing and do not change the environment.


def is_site_vulnerable(unit: CodeUnit, site: SinkSite) -> bool:
    """Whether the sink at ``site`` is truly vulnerable."""
    statement = unit.statement_at(site.statement_index)
    if statement.kind is not StatementKind.SINK:
        raise ValueError(f"statement {site.statement_index} of {unit.unit_id!r} is not a sink")
    states = taint_state_after(unit)
    before = states[site.statement_index - 1] if site.statement_index > 0 else {}
    taint = before.get(statement.sources[0], frozenset())
    return statement.vuln_type in taint


def vulnerable_sites(unit: CodeUnit) -> set[SinkSite]:
    """All truly vulnerable sink sites of ``unit``.

    Streams one running taint environment through the unit instead of
    snapshotting per-statement states (sinks never modify the
    environment, so the state *at* a sink equals the state before it) —
    same verdicts as :func:`taint_state_after`, without the per-statement
    dictionary copies that dominated the scalar generation profile.
    """
    all_types = frozenset(VulnerabilityType)
    environment: dict[str, frozenset[VulnerabilityType]] = {}
    result: set[SinkSite] = set()
    for index, statement in enumerate(unit.statements):
        if statement.kind is StatementKind.SINK:
            taint = environment.get(statement.sources[0], frozenset())
            if statement.vuln_type in taint:
                result.add(SinkSite(unit.unit_id, index, statement.vuln_type))
        else:
            _apply(statement, environment, all_types)
    return result

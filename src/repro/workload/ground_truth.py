"""Ground truth bookkeeping for a workload."""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workload.code_model import SinkSite
from repro.workload.taxonomy import VulnerabilityType

__all__ = ["GroundTruth"]


@dataclass(frozen=True)
class GroundTruth:
    """The oracle verdict for every analysis site of a workload.

    ``sites`` is the complete, ordered tuple of analysis sites;
    ``vulnerable`` the subset that truly hosts a vulnerability.  Benchmarks
    score a tool's report against this object.
    """

    sites: tuple[SinkSite, ...]
    vulnerable: frozenset[SinkSite]

    def __post_init__(self) -> None:
        site_set = set(self.sites)
        if len(site_set) != len(self.sites):
            raise WorkloadError("duplicate analysis sites in ground truth")
        stray = self.vulnerable - site_set
        if stray:
            raise WorkloadError(f"vulnerable sites not in the site list: {sorted(stray)[:3]}")

    @classmethod
    def from_sites(
        cls, sites: Iterable[SinkSite], vulnerable: Iterable[SinkSite]
    ) -> "GroundTruth":
        """Build from any iterables, normalizing container types."""
        return cls(sites=tuple(sites), vulnerable=frozenset(vulnerable))

    @classmethod
    def trusted(
        cls, sites: tuple[SinkSite, ...], vulnerable: Iterable[SinkSite]
    ) -> "GroundTruth":
        """Build without the duplicate/stray-site validation pass.

        Only for producers whose site lists are unique and closed by
        construction and whose output is parity-tested against the
        validating path (the columnar batch generator).  The result is
        equal (``==``) to a validated instance built from the same data.
        """
        truth = object.__new__(cls)
        object.__setattr__(truth, "sites", sites)
        object.__setattr__(truth, "vulnerable", frozenset(vulnerable))
        return truth

    def is_vulnerable(self, site: SinkSite) -> bool:
        """Oracle verdict for one site (O(1) after the first call)."""
        try:
            site_set = self._site_set
        except AttributeError:
            site_set = frozenset(self.sites)
            # Lazy cache on a frozen dataclass; pure function of `sites`.
            object.__setattr__(self, "_site_set", site_set)
        if site not in site_set:
            raise WorkloadError(f"unknown site {site}")
        return site in self.vulnerable

    @property
    def n_sites(self) -> int:
        """Total number of analysis sites."""
        return len(self.sites)

    @property
    def n_vulnerable(self) -> int:
        """Number of truly vulnerable sites."""
        return len(self.vulnerable)

    @property
    def prevalence(self) -> float:
        """Fraction of sites that are vulnerable."""
        if not self.sites:
            raise WorkloadError("empty ground truth has no prevalence")
        return self.n_vulnerable / self.n_sites

    def by_type(self, vuln_type: VulnerabilityType) -> "GroundTruth":
        """Ground truth restricted to one vulnerability class."""
        sites = tuple(site for site in self.sites if site.vuln_type is vuln_type)
        vulnerable = frozenset(site for site in self.vulnerable if site.vuln_type is vuln_type)
        return GroundTruth(sites=sites, vulnerable=vulnerable)

"""A miniature code model for vulnerability-detection workloads.

Real campaigns run tools over source code.  Tools cannot be benchmarked
without code to analyze, so this module defines a small but *real*
intermediate representation the tools in :mod:`repro.tools` actually analyze:
straight-line code units made of statements over named variables, with taint
sources (user inputs), propagation (assignments/concatenations), sanitizers,
and sinks (security-sensitive APIs).

The representation is deliberately simple — the study's subject is the
*metrics*, not program analysis — but it is rich enough that the detection
problem is non-trivial: static tools must track data flow through chains and
respect (or ignore) sanitizers, and a dynamic tool must guess payloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.workload.taxonomy import VulnerabilityType

__all__ = [
    "StatementKind",
    "Statement",
    "CodeUnit",
    "SinkSite",
    "trusted_statement",
    "trusted_unit",
]


class StatementKind(enum.Enum):
    """The statement vocabulary of the mini-IR."""

    INPUT = "input"  # target := external input (taint source)
    CONST = "const"  # target := program constant (never tainted)
    ASSIGN = "assign"  # target := source (taint propagates)
    CONCAT = "concat"  # target := join(sources) (taint is the union)
    SANITIZE = "sanitize"  # target := sanitize[type](source)
    SINK = "sink"  # security-sensitive API consuming the sources


@dataclass(frozen=True, slots=True)
class Statement:
    """One statement of a code unit.

    ``target`` is the variable defined by the statement (``None`` for sinks).
    ``sources`` are the variables read.  ``vuln_type`` is set for sinks (the
    class of vulnerability this sink can host) and for sanitizers (the class
    the sanitizer neutralizes).
    """

    kind: StatementKind
    target: str | None = None
    sources: tuple[str, ...] = ()
    vuln_type: VulnerabilityType | None = None

    def __post_init__(self) -> None:
        if self.kind in (StatementKind.INPUT, StatementKind.CONST):
            if self.target is None or self.sources:
                raise WorkloadError(f"{self.kind.value} defines a target and reads nothing")
        elif self.kind in (StatementKind.ASSIGN, StatementKind.SANITIZE):
            if self.target is None or len(self.sources) != 1:
                raise WorkloadError(f"{self.kind.value} needs a target and exactly one source")
        elif self.kind is StatementKind.CONCAT:
            if self.target is None or len(self.sources) < 1:
                raise WorkloadError("concat needs a target and at least one source")
        elif self.kind is StatementKind.SINK:
            if self.target is not None or len(self.sources) != 1:
                raise WorkloadError("sink reads exactly one variable and defines nothing")
        if self.kind in (StatementKind.SANITIZE, StatementKind.SINK) and self.vuln_type is None:
            raise WorkloadError(f"{self.kind.value} requires a vuln_type")


@dataclass(frozen=True, slots=True, order=True)
class SinkSite:
    """Identifies one analysis site: a sink statement within a unit.

    Sites are the unit of scoring — every site is either vulnerable or safe
    in the ground truth, and either reported or not by each tool.
    """

    unit_id: str
    statement_index: int
    vuln_type: VulnerabilityType = field(compare=False)


@dataclass(frozen=True)
class CodeUnit:
    """A straight-line code unit (think: one web-service operation).

    Validated at construction: every variable is defined before use and
    every statement is well-formed, so downstream analyses never need
    defensive checks.
    """

    unit_id: str
    statements: tuple[Statement, ...]

    def __post_init__(self) -> None:
        if not self.unit_id:
            raise WorkloadError("unit_id must be non-empty")
        defined: set[str] = set()
        for index, statement in enumerate(self.statements):
            for source in statement.sources:
                if source not in defined:
                    raise WorkloadError(
                        f"unit {self.unit_id!r} statement {index}: "
                        f"variable {source!r} used before definition"
                    )
            if statement.target is not None:
                defined.add(statement.target)

    def sink_sites(self) -> list[SinkSite]:
        """All analysis sites of the unit, in statement order."""
        return [
            SinkSite(self.unit_id, index, statement.vuln_type)  # type: ignore[arg-type]
            for index, statement in enumerate(self.statements)
            if statement.kind is StatementKind.SINK
        ]

    def statement_at(self, index: int) -> Statement:
        """The statement at ``index`` with bounds checking."""
        if not 0 <= index < len(self.statements):
            raise WorkloadError(
                f"unit {self.unit_id!r} has no statement {index} "
                f"(has {len(self.statements)})"
            )
        return self.statements[index]

    def __len__(self) -> int:
        return len(self.statements)


def trusted_statement(
    kind: StatementKind,
    target: str | None,
    sources: tuple[str, ...],
    vuln_type: VulnerabilityType | None,
) -> Statement:
    """Construct a :class:`Statement` without running validation.

    For bulk producers whose output is well-formed *by construction* and
    covered by their own parity tests (the columnar batch generator);
    everyone else should use the validating constructor.  The result is
    indistinguishable from a validated statement — same type, same
    fields, same equality and hash.
    """
    statement = object.__new__(Statement)
    object.__setattr__(statement, "kind", kind)
    object.__setattr__(statement, "target", target)
    object.__setattr__(statement, "sources", sources)
    object.__setattr__(statement, "vuln_type", vuln_type)
    return statement


def trusted_unit(unit_id: str, statements: tuple[Statement, ...]) -> CodeUnit:
    """Construct a :class:`CodeUnit` without the def-before-use scan.

    Same contract as :func:`trusted_statement`: only for producers that
    guarantee validity by construction and prove it with parity tests.
    """
    unit = object.__new__(CodeUnit)
    object.__setattr__(unit, "unit_id", unit_id)
    object.__setattr__(unit, "statements", statements)
    return unit

"""Sharded workload generation: seed-addressed partitions of one corpus.

The in-memory generator (:mod:`repro.workload.generator`) tops out at a few
thousand units — a million-unit corpus would hold every statement of every
unit alive at once.  A :class:`ShardPlan` instead *describes* such a corpus
as a sequence of independent shards, each a complete
:class:`~repro.workload.generator.Workload` of at most ``shard_size`` units,
and materializes any one of them on demand.

Determinism contract:

- the corpus identity is ``(seed, scale, shard_size, base config)`` — two
  plans with the same identity describe bit-identical corpora;
- each shard draws from its own child seed,
  ``shard_seed(seed, index, ecosystem)`` (:func:`repro._rng.derive_seed`
  over ``f"shard:{index}"`` for the default ecosystem, historical form, or
  ``f"shard:{ecosystem}:{index}"`` otherwise), so **any shard is
  regenerable in isolation**: no shard's content depends on another shard
  having been generated, on generation order, or on which process
  generates it;
- shard workload names are unique and stable
  (``{base.name}-s{index:06d}``), so per-workload tool substreams (which
  key on the workload name, see :mod:`repro.tools`) differ across shards
  and repeat exactly across runs.

The plan itself holds no units: memory scales with ``shard_size``, never
with ``scale``.  The streaming campaign layer
(:mod:`repro.bench.streaming`) folds per-shard confusion cells into exact
corpus totals without ever materializing two shards at once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro._rng import derive_seed
from repro.errors import ConfigurationError
from repro.workload.ecosystems import DEFAULT_ECOSYSTEM, get_ecosystem
from repro.workload.generator import Workload, WorkloadConfig, generate_workload

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "ShardSpec",
    "ShardPlan",
    "shard_seed",
    "plan_shards",
]

#: Default units per shard: large enough to amortize per-shard overhead,
#: small enough that one shard's workload stays well under 100 MB resident.
DEFAULT_SHARD_SIZE = 10_000


def shard_seed(
    seed: int, index: int, ecosystem: str = DEFAULT_ECOSYSTEM
) -> int:
    """The child seed shard ``index`` of corpus ``seed`` generates from.

    A pure function of the corpus seed, the shard index and the ecosystem,
    so a shard can be regenerated alone, in any process, without touching
    its siblings.  The default ecosystem keeps the historical derivation
    key ``f"shard:{index}"`` (corpora predating ecosystems stay
    bit-identical); every other ecosystem derives from
    ``f"shard:{ecosystem}:{index}"``, so same-seed corpora of different
    ecosystems share no shard streams.
    """
    if ecosystem == DEFAULT_ECOSYSTEM:
        return derive_seed(seed, f"shard:{index}")
    return derive_seed(seed, f"shard:{ecosystem}:{index}")


@dataclass(frozen=True)
class ShardSpec:
    """Identity of one shard: its index, size, child seed and workload name."""

    index: int
    """Position in the corpus (0-based; the last shard may be ragged)."""
    n_units: int
    """Units this shard generates (``shard_size``, except a ragged tail)."""
    seed: int
    """The shard's own generation seed (see :func:`shard_seed`)."""
    name: str
    """The shard workload's name (``{base}-s{index:06d}``, unique per shard)."""


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of a ``scale``-unit corpus into shards.

    The plan is pure description — iterating it yields :class:`ShardSpec`
    identities, and :meth:`generate` materializes one shard's workload at a
    time.  Everything is derived from ``(seed, scale, shard_size, base)``,
    so plans pickle across process boundaries and rebuild identically.
    """

    scale: int
    """Total units in the corpus across all shards."""
    shard_size: int
    """Maximum units per shard (the last shard takes the remainder)."""
    seed: int
    """The corpus master seed; every shard seed is derived from it."""
    base: WorkloadConfig = field(default_factory=WorkloadConfig)
    """Template config; per-shard configs override n_units, seed and name."""

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ConfigurationError(f"scale={self.scale} must be >= 1")
        if self.shard_size < 1:
            raise ConfigurationError(
                f"shard_size={self.shard_size} must be >= 1"
            )

    @property
    def ecosystem(self) -> str:
        """The ecosystem every shard of this corpus belongs to."""
        return self.base.ecosystem

    @property
    def n_shards(self) -> int:
        """How many shards the corpus partitions into (last may be ragged)."""
        return math.ceil(self.scale / self.shard_size)

    def units_in(self, index: int) -> int:
        """Units in shard ``index`` (``shard_size`` except a ragged tail)."""
        self._check_index(index)
        if index == self.n_shards - 1:
            return self.scale - self.shard_size * (self.n_shards - 1)
        return self.shard_size

    def spec(self, index: int) -> ShardSpec:
        """The identity of shard ``index``."""
        self._check_index(index)
        return ShardSpec(
            index=index,
            n_units=self.units_in(index),
            seed=shard_seed(self.seed, index, self.base.ecosystem),
            name=f"{self.base.name}-s{index:06d}",
        )

    def config_for(self, index: int) -> WorkloadConfig:
        """The full :class:`WorkloadConfig` shard ``index`` generates from."""
        spec = self.spec(index)
        return replace(
            self.base, n_units=spec.n_units, seed=spec.seed, name=spec.name
        )

    def generate(self, index: int) -> Workload:
        """Materialize shard ``index`` as a complete workload.

        Independent of every other shard: the same ``(plan, index)`` pair
        produces the same workload whether generated alone, in order, or in
        a worker process.  Runs through the columnar batch path whenever
        the base config supports it (every registered ecosystem does), so
        both the thread and the process executors of
        :func:`repro.bench.engine.shards.run_sharded_campaign` generate at
        batch speed without doing anything.
        """
        return generate_workload(self.config_for(index))

    def columns(self, index: int):
        """Shard ``index`` as a columnar record, skipping materialization.

        Returns the :class:`~repro.workload.columnar.ShardColumns` the
        batch path decodes for this shard — for consumers that want the
        arrays (labels, difficulty, dependency mask) without paying for
        the object graph.  Requires the base config to be within
        :func:`~repro.workload.columnar.supports_batch`.
        """
        from repro.workload.columnar import decode_columns

        return decode_columns(self.config_for(index))

    def __len__(self) -> int:
        return self.n_shards

    def __iter__(self) -> Iterator[ShardSpec]:
        for index in range(self.n_shards):
            yield self.spec(index)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_shards:
            raise ConfigurationError(
                f"shard index {index} out of range for {self.n_shards} shards"
            )


def plan_shards(
    scale: int,
    shard_size: int = DEFAULT_SHARD_SIZE,
    seed: int = 0,
    base: WorkloadConfig | None = None,
    ecosystem: str | None = None,
) -> ShardPlan:
    """Partition a ``scale``-unit corpus into a :class:`ShardPlan`.

    ``base`` supplies the non-size workload parameters (prevalence, type
    mix, difficulty knobs...); its ``n_units``/``seed``/``name`` fields are
    overridden per shard.  ``ecosystem`` instead derives the base from the
    registered :class:`~repro.workload.ecosystems.EcosystemProfile` of that
    name (base name ``corpus`` for the default ecosystem, ``corpus-{name}``
    otherwise).  Passing both is allowed only when they agree.  With
    neither, the base matches
    :class:`~repro.workload.generator.WorkloadConfig`'s defaults with the
    corpus seed and the name ``"corpus"`` — the historical corpus,
    bit-identical to plans predating ecosystems.
    """
    if base is not None:
        if ecosystem is not None and base.ecosystem != ecosystem:
            raise ConfigurationError(
                f"base config is ecosystem {base.ecosystem!r} but "
                f"ecosystem={ecosystem!r} was requested"
            )
    elif ecosystem is None or ecosystem == DEFAULT_ECOSYSTEM:
        base = WorkloadConfig(seed=seed, name="corpus")
    else:
        profile = get_ecosystem(ecosystem)
        base = profile.workload_config(
            n_units=shard_size, seed=seed, name=f"corpus-{ecosystem}"
        )
    return ShardPlan(scale=scale, shard_size=shard_size, seed=seed, base=base)

"""Simulated experts.

The paper validates its metric selection with human experts' judgment fed to
an MCDA algorithm.  Humans are not shippable; what AHP actually consumes is
their artifact — Saaty-scale pairwise comparison matrices.  A simulated
:class:`Expert` produces that artifact from three ingredients:

- a **latent preference**: the scenario's consensus property weights, bent by
  the expert's personal ``bias`` multipliers (a SecOps lead overweights
  "rewards detection"; an academic overweights chance correction);
- **judgment noise**: each pairwise ratio is perturbed log-normally with the
  expert's ``noise_sigma`` — more noise, less consistent matrices, exactly
  the CR behaviour real panels show;
- **discretization**: ratios are snapped to the 1-9 Saaty scale, as a human
  filling in a questionnaire would.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro._rng import spawn
from repro.errors import ElicitationError
from repro.mcda.pairwise import PairwiseComparisonMatrix, snap_to_saaty

__all__ = ["Expert"]


@dataclass(frozen=True)
class Expert:
    """One simulated panel member."""

    name: str
    persona: str
    noise_sigma: float = 0.15
    bias: dict[str, float] = field(default_factory=dict)
    """Multiplicative bends applied to the scenario's latent weights,
    keyed by property name; properties absent from the mapping keep the
    consensus weight."""
    seed: int = 0

    def __post_init__(self) -> None:
        if self.noise_sigma < 0:
            raise ElicitationError(f"noise_sigma={self.noise_sigma} must be >= 0")
        if any(multiplier <= 0 for multiplier in self.bias.values()):
            raise ElicitationError("bias multipliers must be positive")

    def latent_weights(self, consensus: Mapping[str, float]) -> dict[str, float]:
        """The expert's personal weights: consensus bent by bias, renormalized."""
        bent = {
            name: weight * self.bias.get(name, 1.0) for name, weight in consensus.items()
        }
        total = sum(bent.values())
        if total <= 0:
            raise ElicitationError("latent weights degenerate to zero")
        return {name: weight / total for name, weight in bent.items()}

    def judge(
        self,
        scores: Mapping[str, float],
        context_key: str,
        floor: float = 0.02,
    ) -> PairwiseComparisonMatrix:
        """Produce a Saaty-scale pairwise matrix over the scored items.

        ``scores`` is the expert's latent per-item value (criterion weights
        when judging criteria, property scores when judging metrics under a
        criterion).  ``context_key`` keys the noise substream so the same
        expert gives reproducible but question-specific judgments.  ``floor``
        keeps near-zero items judgeable (a human never reports an infinite
        preference).
        """
        labels = list(scores)
        if len(labels) < 2:
            raise ElicitationError("need at least two items to compare")
        values = np.array([max(scores[label], 0.0) + floor for label in labels])
        rng = spawn(self.seed, f"expert:{self.name}:{context_key}")
        n = len(labels)
        matrix = np.eye(n)
        for i in range(n):
            for j in range(i + 1, n):
                ratio = values[i] / values[j]
                noisy = ratio * float(np.exp(rng.normal(0.0, self.noise_sigma)))
                judgment = snap_to_saaty(min(max(noisy, 1.0 / 9.0), 9.0))
                matrix[i, j] = judgment
                matrix[j, i] = 1.0 / judgment
        return PairwiseComparisonMatrix(labels=tuple(labels), values=matrix)

    def judge_criteria(
        self, consensus: Mapping[str, float], scenario_key: str
    ) -> PairwiseComparisonMatrix:
        """Pairwise comparison of the good-metric properties for a scenario."""
        return self.judge(
            self.latent_weights(consensus), context_key=f"criteria:{scenario_key}"
        )

    def judge_alternatives(
        self, property_name: str, metric_scores: Mapping[str, float]
    ) -> PairwiseComparisonMatrix:
        """Pairwise comparison of candidate metrics under one property.

        The expert reads the evidence (the properties-matrix column) through
        personal noise — modelling that experts agree with measurements only
        approximately.
        """
        return self.judge(metric_scores, context_key=f"alternatives:{property_name}")

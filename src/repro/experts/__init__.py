"""Simulated expert panels for the MCDA validation."""

from repro.experts.elicitation import (
    ScenarioValidation,
    elicit_hierarchy,
    validate_scenario,
)
from repro.experts.expert import Expert
from repro.experts.panel import (
    ExpertPanel,
    aggregate_judgments,
    aggregate_priorities,
    default_panel,
)

__all__ = [
    "ScenarioValidation",
    "elicit_hierarchy",
    "validate_scenario",
    "Expert",
    "ExpertPanel",
    "aggregate_judgments",
    "aggregate_priorities",
    "default_panel",
]

"""Expert panels and judgment aggregation.

AHP practice aggregates a panel's judgments either by combining the
*judgments* (AIJ: element-wise geometric mean of the matrices — geometric
because it is the only mean preserving reciprocity) or by combining the
*priorities* (AIP: average the individual priority vectors).  Both are
implemented; the reproduction's experiments use AIJ, the usual choice when
the panel acts as one decision maker, and report AIP as a robustness check.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro._rng import derive_seed
from repro.errors import ElicitationError
from repro.experts.expert import Expert
from repro.mcda.pairwise import PairwiseComparisonMatrix

__all__ = ["ExpertPanel", "default_panel", "aggregate_judgments", "aggregate_priorities"]


def aggregate_judgments(
    matrices: Sequence[PairwiseComparisonMatrix],
) -> PairwiseComparisonMatrix:
    """AIJ: element-wise geometric mean of the panel's judgment matrices."""
    if not matrices:
        raise ElicitationError("no matrices to aggregate")
    labels = matrices[0].labels
    if any(m.labels != labels for m in matrices):
        raise ElicitationError("all matrices must compare the same items in the same order")
    stack = np.stack([m.values for m in matrices])
    aggregated = np.exp(np.log(stack).mean(axis=0))
    # Geometric mean preserves reciprocity exactly up to float error; re-impose it.
    n = len(labels)
    for i in range(n):
        aggregated[i, i] = 1.0
        for j in range(i + 1, n):
            aggregated[j, i] = 1.0 / aggregated[i, j]
    return PairwiseComparisonMatrix(labels=labels, values=aggregated)


def aggregate_priorities(
    matrices: Sequence[PairwiseComparisonMatrix], method: str = "eigenvector"
) -> dict[str, float]:
    """AIP: arithmetic mean of the individual priority vectors."""
    if not matrices:
        raise ElicitationError("no matrices to aggregate")
    labels = matrices[0].labels
    if any(m.labels != labels for m in matrices):
        raise ElicitationError("all matrices must compare the same items in the same order")
    totals = {label: 0.0 for label in labels}
    for matrix in matrices:
        for label, priority in matrix.priorities(method).items():
            totals[label] += priority
    count = len(matrices)
    return {label: value / count for label, value in totals.items()}


@dataclass(frozen=True)
class ExpertPanel:
    """A named group of simulated experts."""

    experts: tuple[Expert, ...]

    def __post_init__(self) -> None:
        if not self.experts:
            raise ElicitationError("panel must have at least one expert")
        names = [e.name for e in self.experts]
        if len(set(names)) != len(names):
            raise ElicitationError("duplicate expert names in panel")

    def __len__(self) -> int:
        return len(self.experts)

    @property
    def names(self) -> list[str]:
        """Member names in panel order."""
        return [e.name for e in self.experts]

    def criteria_judgments(
        self, consensus: dict[str, float], scenario_key: str
    ) -> list[PairwiseComparisonMatrix]:
        """Each member's criteria comparison for a scenario."""
        return [e.judge_criteria(consensus, scenario_key) for e in self.experts]

    def alternatives_judgments(
        self, property_name: str, metric_scores: dict[str, float]
    ) -> list[PairwiseComparisonMatrix]:
        """Each member's metric comparison under one property."""
        return [e.judge_alternatives(property_name, metric_scores) for e in self.experts]


def default_panel(seed: int = 0) -> ExpertPanel:
    """The seven-member panel of the reproduction.

    Personas and biases follow the stakeholder mix a DSN-style study would
    recruit: operations, audit, vendor, academia, consulting, plus two
    unbiased practitioners with different judgment noise.
    """

    def expert_seed(name: str) -> int:
        return derive_seed(seed, f"panel:{name}")

    experts = (
        Expert(
            name="E1-secops",
            persona="SecOps lead of a critical-infrastructure operator",
            noise_sigma=0.18,
            bias={"rewards detection": 1.5, "rewards silence": 0.8},
            seed=expert_seed("E1-secops"),
        ),
        Expert(
            name="E2-auditor",
            persona="Security auditor for hardened products",
            noise_sigma=0.14,
            bias={"prevalence-invariant": 1.4, "chance-corrected": 1.2},
            seed=expert_seed("E2-auditor"),
        ),
        Expert(
            name="E3-vendor",
            persona="Researcher at a detection-tool vendor",
            noise_sigma=0.16,
            bias={"accepted": 1.6, "understandable": 1.3},
            seed=expert_seed("E3-vendor"),
        ),
        Expert(
            name="E4-academic",
            persona="Measurement-theory academic",
            noise_sigma=0.10,
            bias={"chance-corrected": 1.5, "bounded": 1.2, "accepted": 0.7},
            seed=expert_seed("E4-academic"),
        ),
        Expert(
            name="E5-consultant",
            persona="Security consultant triaging client reports",
            noise_sigma=0.20,
            bias={"rewards silence": 1.4, "understandable": 1.4},
            seed=expert_seed("E5-consultant"),
        ),
        Expert(
            name="E6-engineer",
            persona="Senior product-security engineer (no strong bias)",
            noise_sigma=0.12,
            seed=expert_seed("E6-engineer"),
        ),
        Expert(
            name="E7-analyst",
            persona="Benchmark analyst (no strong bias, noisier judge)",
            noise_sigma=0.25,
            seed=expert_seed("E7-analyst"),
        ),
    )
    return ExpertPanel(experts=experts)

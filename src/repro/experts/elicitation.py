"""Elicitation: from a scenario + evidence + panel to a full AHP hierarchy.

This is the glue of the paper's step 4.  For a scenario:

1. every expert pairwise-compares the good-metric *properties* (criteria),
   starting from the scenario's consensus weights bent by personal bias;
2. every expert pairwise-compares the candidate *metrics under each
   property*, reading the executable properties matrix through personal
   noise;
3. judgments are aggregated (AIJ) into one criteria matrix and one
   alternatives matrix per criterion — an :class:`AhpHierarchy` ready to
   compose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ElicitationError
from repro.experts.panel import ExpertPanel, aggregate_judgments
from repro.mcda.ahp import AhpHierarchy, AhpResult
from repro.properties.matrix import PropertiesMatrix
from repro.scenarios.scenarios import Scenario
from repro.stats.rank import kendalls_w

__all__ = ["ScenarioValidation", "elicit_hierarchy", "validate_scenario"]


def elicit_hierarchy(
    scenario: Scenario,
    properties_matrix: PropertiesMatrix,
    panel: ExpertPanel,
) -> AhpHierarchy:
    """Build the aggregated AHP hierarchy for ``scenario``."""
    missing = set(scenario.property_weights) - set(properties_matrix.property_names)
    if missing:
        raise ElicitationError(
            f"scenario weighs properties absent from the matrix: {sorted(missing)}"
        )
    criteria_names = [
        name
        for name in properties_matrix.property_names
        if name in scenario.property_weights
    ]
    consensus = {name: scenario.property_weights[name] for name in criteria_names}

    criteria = aggregate_judgments(panel.criteria_judgments(consensus, scenario.key))

    alternatives: dict[str, object] = {}
    for property_name in criteria_names:
        column = properties_matrix.column(property_name)
        alternatives[property_name] = aggregate_judgments(
            panel.alternatives_judgments(property_name, column)
        )
    return AhpHierarchy(criteria=criteria, alternatives=alternatives)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ScenarioValidation:
    """Everything the R9 table reports for one scenario."""

    scenario_key: str
    ahp: AhpResult
    per_expert_best: dict[str, str]
    """Each expert's individually composed winner (their own hierarchy)."""
    panel_concordance: float
    """Kendall's W over the experts' individual metric priorities: how
    cohesively the panel ranks the candidates before aggregation."""

    @property
    def panel_best(self) -> str:
        """The aggregated panel's winning metric."""
        return self.ahp.best

    @property
    def expert_agreement(self) -> float:
        """Fraction of experts whose individual winner matches the panel's."""
        if not self.per_expert_best:
            return float("nan")
        matches = sum(1 for best in self.per_expert_best.values() if best == self.panel_best)
        return matches / len(self.per_expert_best)


def validate_scenario(
    scenario: Scenario,
    properties_matrix: PropertiesMatrix,
    panel: ExpertPanel,
    method: str = "eigenvector",
) -> ScenarioValidation:
    """Run the full expert-validated AHP for one scenario.

    Besides the aggregated result, each expert's *individual* hierarchy is
    composed so the report can show how contested the winner is.
    """
    hierarchy = elicit_hierarchy(scenario, properties_matrix, panel)
    ahp = hierarchy.compose(method)

    per_expert_best: dict[str, str] = {}
    per_expert_priorities: list[list[float]] = []
    metric_symbols = list(hierarchy.alternative_labels)
    criteria_names = list(hierarchy.criteria.labels)
    consensus = {name: scenario.property_weights[name] for name in criteria_names}
    for expert in panel.experts:
        individual = AhpHierarchy(
            criteria=expert.judge_criteria(consensus, scenario.key),
            alternatives={
                name: expert.judge_alternatives(name, properties_matrix.column(name))
                for name in criteria_names
            },
        )
        composed = individual.compose(method)
        per_expert_best[expert.name] = composed.best
        per_expert_priorities.append(
            [composed.alternative_priorities[symbol] for symbol in metric_symbols]
        )
    return ScenarioValidation(
        scenario_key=scenario.key,
        ahp=ahp,
        per_expert_best=per_expert_best,
        panel_concordance=kendalls_w(per_expert_priorities),
    )

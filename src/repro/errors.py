"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so a
caller can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError``, ``ValueError`` from misuse of the
Python language itself) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters."""


class MetricError(ReproError):
    """Base class for metric-related failures."""


class UndefinedMetricError(MetricError):
    """A metric is mathematically undefined for the given confusion matrix.

    For example precision is undefined when a tool reports nothing
    (``tp + fp == 0``).  Callers that prefer a sentinel value should use
    :meth:`repro.metrics.Metric.value_or_nan` instead of
    :meth:`repro.metrics.Metric.compute`.
    """


class WorkloadError(ReproError):
    """The workload model was violated (bad unit, unknown variable, ...)."""


class ToolError(ReproError):
    """A vulnerability detection tool failed or was misconfigured."""


class McdaError(ReproError):
    """Base class for multi-criteria decision analysis failures."""


class InconsistentJudgmentError(McdaError):
    """A pairwise comparison matrix exceeded the allowed consistency ratio."""


class ElicitationError(ReproError):
    """Expert judgment elicitation could not be completed."""

"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so a
caller can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError``, ``ValueError`` from misuse of the
Python language itself) propagate untouched.  That contract covers the
experiment engine too: scheduler-level failures surface as
:class:`EngineError` subclasses, and persistence failures as
:class:`PersistError`, so ``except ReproError`` still catches everything
the library itself raises.  The one deliberate exception is
:class:`repro.bench.engine.faults.InjectedFault`, which simulates an
*arbitrary third-party tool crash* and therefore derives from
``RuntimeError`` on purpose.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters."""


class MetricError(ReproError):
    """Base class for metric-related failures."""


class UndefinedMetricError(MetricError):
    """A metric is mathematically undefined for the given confusion matrix.

    For example precision is undefined when a tool reports nothing
    (``tp + fp == 0``).  Callers that prefer a sentinel value should use
    :meth:`repro.metrics.Metric.value_or_nan` instead of
    :meth:`repro.metrics.Metric.compute`.
    """


class WorkloadError(ReproError):
    """The workload model was violated (bad unit, unknown variable, ...)."""


class ToolError(ReproError):
    """A vulnerability detection tool failed or was misconfigured."""


class McdaError(ReproError):
    """Base class for multi-criteria decision analysis failures."""


class InconsistentJudgmentError(McdaError):
    """A pairwise comparison matrix exceeded the allowed consistency ratio."""


class ElicitationError(ReproError):
    """Expert judgment elicitation could not be completed."""


class PersistError(ReproError):
    """A persisted artifact could not be read back (truncated, garbage...).

    Carries the offending ``path`` so callers (and the artifact store's
    quarantine logic) can act on the file without parsing the message.
    """

    def __init__(self, message: str, path: str | None = None) -> None:
        super().__init__(message)
        self.path = path


class EngineError(ReproError):
    """Base class for experiment-engine failures (scheduling, execution)."""


class ExperimentFailedError(EngineError):
    """An experiment exhausted its retry budget and terminally failed.

    ``__cause__`` carries the last underlying exception; ``experiment_id``
    and ``attempts`` identify what failed and how hard the engine tried.
    """

    def __init__(
        self, message: str, experiment_id: str | None = None, attempts: int = 1
    ) -> None:
        super().__init__(message)
        self.experiment_id = experiment_id
        self.attempts = attempts


class WorkerCrashError(EngineError):
    """A worker process died mid-task (segfault, OOM kill, ``os._exit``).

    Raised by the sharded runner's supervision layer when a shard keeps
    killing the workers it is dispatched to and gets quarantined; also
    the structured ``error_type`` recorded for quarantined shards."""


class ExperimentTimeoutError(EngineError):
    """An experiment exceeded the run's ``--timeout`` budget."""

    def __init__(
        self,
        message: str,
        experiment_id: str | None = None,
        timeout: float | None = None,
    ) -> None:
        super().__init__(message)
        self.experiment_id = experiment_id
        self.timeout = timeout


class ArtifactCorruptError(EngineError):
    """A disk-cached artifact failed its integrity check (digest/schema).

    The artifact store quarantines the file and recomputes; this error is
    what the integrity layer raises internally to trigger that path."""

    def __init__(self, message: str, path: str | None = None) -> None:
        super().__init__(message)
        self.path = path


class ServeError(ReproError):
    """A campaign-service failure (:mod:`repro.serve`).

    Raised for invalid job submissions, queries against unknown jobs, and
    malformed service state; the HTTP layer maps it to a 4xx response
    instead of letting it take the service down."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status
        """The HTTP status code the service layer responds with."""

"""Parametric simulated tools.

The scenario and MCDA studies need *pools* of tools spanning the whole
precision/recall operating space, including operating points the three real
detectors do not reach.  A :class:`SimulatedTool` draws each site's verdict
from a Bernoulli whose probability is the tool's per-class recall (for
vulnerable sites) or false-positive rate (for safe sites), modulated by site
difficulty — the standard way benchmark studies model tools when only their
campaign-level rates are published.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._rng import derive_seed, spawn
from repro.errors import ToolError
from repro.tools.base import Detection, DetectionReport, VulnerabilityDetectionTool
from repro.workload.generator import Workload
from repro.workload.taxonomy import VulnerabilityType

__all__ = ["ToolProfile", "SimulatedTool"]


@dataclass(frozen=True)
class ToolProfile:
    """Operating characteristics of a simulated tool.

    ``recall`` / ``fpr`` are the baseline per-site probabilities; the
    optional per-class overrides model tools that are strong on SQL injection
    but weak on XPath, etc.  ``difficulty_sensitivity`` in [0, 1] scales how
    much a hard site depresses the detection probability.
    """

    recall: float
    fpr: float
    recall_by_type: dict[VulnerabilityType, float] = field(default_factory=dict)
    fpr_by_type: dict[VulnerabilityType, float] = field(default_factory=dict)
    difficulty_sensitivity: float = 0.3
    ranking_quality: float = 0.6
    """How well the tool's confidences separate real findings from false
    alarms, in [0, 1]: 0 = confidences carry no information beyond the
    binary report, 1 = true findings always outscore false alarms."""

    def __post_init__(self) -> None:
        for label, value in (("recall", self.recall), ("fpr", self.fpr)):
            if not 0.0 <= value <= 1.0:
                raise ToolError(f"{label}={value} must be in [0, 1]")
        for mapping in (self.recall_by_type, self.fpr_by_type):
            for vuln_type, value in mapping.items():
                if not 0.0 <= value <= 1.0:
                    raise ToolError(f"rate for {vuln_type} is {value}, not in [0, 1]")
        if not 0.0 <= self.difficulty_sensitivity <= 1.0:
            raise ToolError(
                f"difficulty_sensitivity={self.difficulty_sensitivity} must be in [0, 1]"
            )
        if not 0.0 <= self.ranking_quality <= 1.0:
            raise ToolError(
                f"ranking_quality={self.ranking_quality} must be in [0, 1]"
            )

    def detection_probability(self, vuln_type: VulnerabilityType, difficulty: float) -> float:
        """Probability of reporting a *vulnerable* site of this class."""
        base = self.recall_by_type.get(vuln_type, self.recall)
        return base * (1.0 - self.difficulty_sensitivity * difficulty)

    def false_alarm_probability(self, vuln_type: VulnerabilityType) -> float:
        """Probability of reporting a *safe* site of this class."""
        return self.fpr_by_type.get(vuln_type, self.fpr)


class SimulatedTool(VulnerabilityDetectionTool):
    """A tool defined entirely by its :class:`ToolProfile`."""

    def __init__(self, name: str, profile: ToolProfile, seed: int = 0) -> None:
        super().__init__(name)
        self.profile = profile
        self.seed = seed

    def analyze(self, workload: Workload) -> DetectionReport:
        """Sample detections at this tool's configured TPR/FPR, seeded per workload."""
        rng = spawn(derive_seed(self.seed, self.name), f"simulated:{workload.name}")
        detections: list[Detection] = []
        for site in workload.truth.sites:
            site_profile = workload.profiles[site]
            if site_profile.vulnerable:
                probability = self.profile.detection_probability(
                    site_profile.vuln_type, site_profile.difficulty
                )
            else:
                probability = self.profile.false_alarm_probability(site_profile.vuln_type)
            if rng.random() < probability:
                detections.append(
                    Detection(
                        site=site,
                        confidence=self._confidence(rng, site_profile.vulnerable),
                    )
                )
        return self._report(workload, detections)

    def _confidence(self, rng: np.random.Generator, vulnerable: bool) -> float:
        """Draw a finding confidence.

        ``ranking_quality`` interpolates between uninformative (same uniform
        distribution for real findings and false alarms) and fully
        separating (real findings uniformly above every false alarm).
        """
        draw = float(rng.uniform(0.05, 1.0))
        quality = self.profile.ranking_quality
        if vulnerable:
            floor = 0.05 + 0.95 * 0.5 * quality
            return floor + (1.0 - floor) * (draw - 0.05) / 0.95
        ceiling = 1.0 - 0.95 * 0.5 * quality
        return 0.05 + (ceiling - 0.05) * (draw - 0.05) / 0.95

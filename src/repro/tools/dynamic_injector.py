"""Dynamic (penetration-testing style) detector.

Models the black-box testers of the original campaigns (AppScan/WebInspect
class): for every analysis site it "fires payloads" and observes whether an
injection manifests.  We do not execute code — instead, the probability that
the attack lands is derived from the site's true state and generation
profile:

- a vulnerable site is detected with probability
  ``base_detectability(class) * payload_coverage * (1 - difficulty_penalty)``
  — black-box testing misses vulnerabilities behind deep transformations;
- a safe site is (rarely) *mis*-reported with probability ``false_alarm_rate``
  — response misinterpretation, the dominant FP source of dynamic tools.

This keeps dynamic tools in their empirically observed corner: good
precision, modest and class-dependent recall.  All randomness derives from
the tool's seed and the workload name, so campaigns remain repeatable.
"""

from __future__ import annotations

from repro._rng import derive_seed, spawn
from repro.errors import ToolError
from repro.tools.base import Detection, DetectionReport, VulnerabilityDetectionTool
from repro.workload.generator import Workload
from repro.workload.taxonomy import TRAITS

__all__ = ["DynamicInjector"]


class DynamicInjector(VulnerabilityDetectionTool):
    """Payload-firing black-box tester with calibrated hit probabilities."""

    def __init__(
        self,
        name: str = "DynamicInjector",
        payload_coverage: float = 0.8,
        difficulty_penalty: float = 0.5,
        false_alarm_rate: float = 0.02,
        seed: int = 0,
        confidence: float = 0.95,
    ) -> None:
        super().__init__(name)
        if not 0.0 < payload_coverage <= 1.0:
            raise ToolError(f"payload_coverage={payload_coverage} must be in (0, 1]")
        if not 0.0 <= difficulty_penalty <= 1.0:
            raise ToolError(f"difficulty_penalty={difficulty_penalty} must be in [0, 1]")
        if not 0.0 <= false_alarm_rate < 1.0:
            raise ToolError(f"false_alarm_rate={false_alarm_rate} must be in [0, 1)")
        self.payload_coverage = payload_coverage
        self.difficulty_penalty = difficulty_penalty
        self.false_alarm_rate = false_alarm_rate
        self.seed = seed
        self.confidence = confidence

    def analyze(self, workload: Workload) -> DetectionReport:
        """Probe each site with seeded payloads; report triggered faults."""
        rng = spawn(derive_seed(self.seed, self.name), f"dynamic:{workload.name}")
        detections: list[Detection] = []
        for site in workload.truth.sites:
            profile = workload.profiles[site]
            if profile.vulnerable:
                traits = TRAITS[profile.vuln_type]
                hit_probability = (
                    traits.base_dynamic_detectability
                    * self.payload_coverage
                    * (1.0 - self.difficulty_penalty * profile.difficulty)
                )
                if rng.random() < hit_probability:
                    # A triggered injection is strong, slightly variable
                    # evidence (payload echo quality differs per site).
                    confidence = min(
                        1.0, self.confidence * (0.8 + 0.2 * rng.random())
                    )
                    detections.append(Detection(site=site, confidence=confidence))
            else:
                if rng.random() < self.false_alarm_rate:
                    # Misread responses come with hesitant confidence.
                    confidence = 0.35 + 0.4 * rng.random()
                    detections.append(Detection(site=site, confidence=confidence))
        return self._report(workload, detections)

"""Pattern (signature) scanner.

Models the grep-style first generation of static analyzers: it flags a sink
whenever the unit contains *any* external input, without tracking whether the
input actually flows into the sink or is sanitized on the way.  The result is
the classic high-recall / low-precision profile — a corner of the operating
space the metrics study needs populated.

One knob tightens it up: ``respect_sanitizers`` suppresses a finding when a
matching-class sanitizer appears anywhere before the sink — a purely
syntactic check, so it still gets fooled when the sanitizer sits on a
different data path (including another site in the same unit).
"""

from __future__ import annotations

from repro.tools.base import Detection, DetectionReport, VulnerabilityDetectionTool
from repro.workload.code_model import CodeUnit, SinkSite, StatementKind
from repro.workload.generator import Workload

__all__ = ["PatternScanner"]


class PatternScanner(VulnerabilityDetectionTool):
    """Syntactic signature matcher over the mini-IR."""

    def __init__(
        self,
        name: str = "PatternScanner",
        respect_sanitizers: bool = False,
        confidence: float = 0.6,
    ) -> None:
        super().__init__(name)
        self.respect_sanitizers = respect_sanitizers
        self.confidence = confidence

    def analyze(self, workload: Workload) -> DetectionReport:
        """Flag every site whose code matches a known vulnerable pattern."""
        detections: list[Detection] = []
        for unit in workload.units:
            detections.extend(self._scan_unit(unit))
        return self._report(workload, detections)

    def _scan_unit(self, unit: CodeUnit) -> list[Detection]:
        has_input = any(s.kind is StatementKind.INPUT for s in unit.statements)
        if not has_input:
            return []
        findings: list[Detection] = []
        for index, statement in enumerate(unit.statements):
            if statement.kind is not StatementKind.SINK:
                continue
            sanitized = self._sanitized_before(unit, index)
            if self.respect_sanitizers and sanitized:
                continue
            site = SinkSite(unit.unit_id, index, statement.vuln_type)  # type: ignore[arg-type]
            # A visible same-class sanitizer the scanner chose not to trust
            # still lowers its reported confidence — the hedging behaviour
            # of real signature matchers.
            confidence = self.confidence * (0.55 if sanitized else 1.0)
            findings.append(Detection(site=site, confidence=confidence))
        return findings

    def _sanitized_before(self, unit: CodeUnit, sink_index: int) -> bool:
        """Purely syntactic: any same-class sanitizer textually above the sink."""
        sink = unit.statements[sink_index]
        return any(
            s.kind is StatementKind.SANITIZE and s.vuln_type is sink.vuln_type
            for s in unit.statements[:sink_index]
        )

"""Detection tool interface.

A tool consumes a :class:`~repro.workload.Workload` and produces a
:class:`DetectionReport`: the set of analysis sites it flags as vulnerable.
The benchmark harness scores reports against the workload's ground truth to
obtain confusion matrices — at which point the tool's internals no longer
matter, which is exactly the abstraction boundary the paper's metrics
analysis sits on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ToolError
from repro.workload.code_model import SinkSite
from repro.workload.generator import Workload

__all__ = ["Detection", "DetectionReport", "VulnerabilityDetectionTool"]


@dataclass(frozen=True, slots=True)
class Detection:
    """One finding: a flagged analysis site with a confidence score."""

    site: SinkSite
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence <= 1.0:
            raise ToolError(f"confidence={self.confidence} must be in (0, 1]")


@dataclass(frozen=True)
class DetectionReport:
    """The complete output of one tool run over one workload."""

    tool_name: str
    workload_name: str
    detections: tuple[Detection, ...]

    def __post_init__(self) -> None:
        sites = [d.site for d in self.detections]
        if len(set(sites)) != len(sites):
            raise ToolError(f"tool {self.tool_name!r} reported a site twice")

    @property
    def flagged_sites(self) -> frozenset[SinkSite]:
        """The set of sites the tool reported."""
        return frozenset(d.site for d in self.detections)

    @property
    def n_detections(self) -> int:
        """Number of findings in the report."""
        return len(self.detections)


class VulnerabilityDetectionTool(ABC):
    """Base class for every detector (real or simulated)."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ToolError("tool name must be non-empty")
        self.name = name

    @abstractmethod
    def analyze(self, workload: Workload) -> DetectionReport:
        """Run the tool over ``workload`` and return its report.

        Implementations must be deterministic given their construction
        parameters (stochastic tools derive per-workload substreams from
        their seed), so campaigns are repeatable.
        """

    def _report(self, workload: Workload, detections: list[Detection]) -> DetectionReport:
        """Package ``detections`` into a report, sorted for determinism."""
        ordered = tuple(sorted(detections, key=lambda d: d.site))
        return DetectionReport(
            tool_name=self.name, workload_name=workload.name, detections=ordered
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"

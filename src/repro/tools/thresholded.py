"""Confidence thresholds as an operating-point dial.

Most real tools expose a severity/confidence cut-off, which means a single
tool is really a *family* of operating points.  The scenario then chooses
not only the metric but the threshold: a critical-system user runs the tool
wide open, a triage-bound team dials it up.  This module wraps any detector
with a threshold, sweeps the dial, and finds the cost-optimal setting for a
given cost structure.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ToolError
from repro.metrics.confusion import ConfusionMatrix
from repro.scenarios.cost_model import CostStructure
from repro.tools.base import DetectionReport, VulnerabilityDetectionTool
from repro.workload.generator import Workload

__all__ = ["ThresholdedTool", "ThresholdPoint", "threshold_sweep", "optimal_threshold"]


class ThresholdedTool(VulnerabilityDetectionTool):
    """A detector reporting only findings at or above a confidence cut-off."""

    def __init__(self, base: VulnerabilityDetectionTool, threshold: float) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ToolError(f"threshold={threshold} must be in [0, 1]")
        super().__init__(f"{base.name}@{threshold:g}")
        self.base = base
        self.threshold = threshold

    def analyze(self, workload: Workload) -> DetectionReport:
        """Run the base tool, then keep only detections above the threshold."""
        full = self.base.analyze(workload)
        kept = [d for d in full.detections if d.confidence >= self.threshold]
        return self._report(workload, kept)


@dataclass(frozen=True, slots=True)
class ThresholdPoint:
    """One stop on the threshold dial."""

    threshold: float
    confusion: ConfusionMatrix
    expected_cost: float | None = None


def threshold_sweep(
    tool: VulnerabilityDetectionTool,
    workload: Workload,
    thresholds: Sequence[float] = (0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    cost: CostStructure | None = None,
) -> list[ThresholdPoint]:
    """Score the tool at every threshold (one base run, filtered locally).

    The base tool runs exactly once, so stochastic tools keep one coherent
    set of findings across the sweep — the dial moves, the tool does not.
    """
    # Imported here: the campaign layer imports the tools package, so a
    # module-level import would be circular.
    from repro.bench.campaign import score_report

    if not thresholds:
        raise ToolError("thresholds must not be empty")
    if any(not 0.0 <= t <= 1.0 for t in thresholds):
        raise ToolError("thresholds must lie in [0, 1]")
    full = tool.analyze(workload)
    ordered = sorted(thresholds)
    confusions = []
    for threshold in ordered:
        kept = tuple(d for d in full.detections if d.confidence >= threshold)
        report = DetectionReport(
            tool_name=f"{tool.name}@{threshold:g}",
            workload_name=workload.name,
            detections=kept,
        )
        confusions.append(score_report(report, workload.truth))
    if cost is not None:
        # One vectorized pass over the whole dial; elementwise identical to
        # calling cost.expected_cost per point.
        from repro.metrics.batch import ConfusionBatch

        costs = cost.expected_cost_batch(ConfusionBatch.from_matrices(confusions))
        expected = [float(value) for value in costs]
    else:
        expected = [None] * len(ordered)
    return [
        ThresholdPoint(threshold=threshold, confusion=confusion, expected_cost=value)
        for threshold, confusion, value in zip(ordered, confusions, expected)
    ]


def optimal_threshold(
    tool: VulnerabilityDetectionTool,
    workload: Workload,
    cost: CostStructure,
    thresholds: Sequence[float] = (0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
) -> ThresholdPoint:
    """The sweep point minimizing expected cost (ties go to the lower
    threshold — when indifferent, keep more findings visible)."""
    points = threshold_sweep(tool, workload, thresholds, cost=cost)
    return min(points, key=lambda p: (p.expected_cost, p.threshold))

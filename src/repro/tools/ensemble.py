"""Ensemble/consensus meta-tool: a quorum vote over member reports.

Benchmark normalization pipelines (SAST + DAST + SCA scanners folded into
one result schema) commonly add a *triage consensus* step: a finding is
promoted only when enough independent scanners agree.  The
:class:`EnsembleTool` models that as a detection tool in its own right — it
runs every member over the workload and flags the sites at least ``quorum``
members flag, with the vote share as its confidence.

Determinism is inherited: members are ordinary tools whose reports are pure
functions of ``(member construction, workload)``, so the ensemble's report
is too.  The ensemble never consults ground truth — it only sees member
reports, exactly like a real triage step.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.errors import ToolError
from repro.tools.base import Detection, DetectionReport, VulnerabilityDetectionTool
from repro.workload.generator import Workload

__all__ = ["EnsembleTool"]


class EnsembleTool(VulnerabilityDetectionTool):
    """Consensus detector: flag sites at least ``quorum`` members flag."""

    def __init__(
        self,
        name: str,
        members: Sequence[VulnerabilityDetectionTool],
        quorum: int,
    ) -> None:
        super().__init__(name)
        if not members:
            raise ToolError("ensemble needs at least one member tool")
        member_names = [member.name for member in members]
        if len(set(member_names)) != len(member_names):
            raise ToolError(
                f"ensemble members must have unique names, got {member_names}"
            )
        if not 1 <= quorum <= len(members):
            raise ToolError(
                f"quorum={quorum} must be in [1, {len(members)}] "
                f"(the member count)"
            )
        self.members = tuple(members)
        self.quorum = quorum

    def analyze(self, workload: Workload) -> DetectionReport:
        """Run every member, then vote: ``quorum`` flags promote a site."""
        votes: Counter = Counter()
        for member in self.members:
            votes.update(member.analyze(workload).flagged_sites)
        detections = [
            Detection(site=site, confidence=count / len(self.members))
            for site, count in votes.items()
            if count >= self.quorum
        ]
        return self._report(workload, detections)

"""Reference tool suites for the reproduction campaigns.

The original study benchmarked a handful of static analyzers and penetration
testers whose identities are anonymized in the authors' campaigns ("VS1",
"PT2", ...).  We mirror that: a suite of eight tools spanning the operating
space those campaigns reported —

===========  ==================================================================
``SA-Grep``   syntactic scanner, near-total recall, poor precision
``SA-Flow``   taint analysis without a sanitizer model: precise on clean code,
              false-positives every sanitized decoy
``SA-Deep``   full taint analysis with a depth budget: precise, misses deep
              chains
``PT-Spider`` dynamic tester with a broad payload dictionary
``PT-Probe``  dynamic tester with a narrow dictionary (cautious, precise)
``VS-Alpha``  simulated commercial scanner: balanced, mildly class-skewed
``VS-Beta``   simulated aggressive scanner: recall-heavy, noisy
``VS-Gamma``  simulated conservative scanner: silent unless certain
===========  ==================================================================

Every experiment that needs "the tools under benchmarking" uses
:func:`reference_suite` so results are comparable across experiments.
"""

from __future__ import annotations

from repro.tools.base import VulnerabilityDetectionTool
from repro.tools.dynamic_injector import DynamicInjector
from repro.tools.pattern_scanner import PatternScanner
from repro.tools.simulated import SimulatedTool, ToolProfile
from repro.tools.taint_analyzer import TaintAnalyzer
from repro.workload.taxonomy import VulnerabilityType

__all__ = ["reference_suite", "real_tool_suite", "simulated_pool"]


def real_tool_suite(seed: int = 0) -> list[VulnerabilityDetectionTool]:
    """The five detectors with actual analysis logic."""
    return [
        PatternScanner(name="SA-Grep", respect_sanitizers=False),
        TaintAnalyzer(name="SA-Flow", trust_sanitizers=False),
        TaintAnalyzer(name="SA-Deep", trust_sanitizers=True, max_chain_depth=4),
        DynamicInjector(
            name="PT-Spider",
            payload_coverage=0.9,
            difficulty_penalty=0.45,
            false_alarm_rate=0.03,
            seed=seed,
        ),
        DynamicInjector(
            name="PT-Probe",
            payload_coverage=0.6,
            difficulty_penalty=0.6,
            false_alarm_rate=0.005,
            seed=seed,
        ),
    ]


def simulated_pool(seed: int = 0) -> list[VulnerabilityDetectionTool]:
    """Three simulated commercial scanners filling out the operating space."""
    return [
        SimulatedTool(
            "VS-Alpha",
            ToolProfile(
                recall=0.70,
                fpr=0.10,
                recall_by_type={
                    VulnerabilityType.SQL_INJECTION: 0.85,
                    VulnerabilityType.XPATH_INJECTION: 0.45,
                },
                difficulty_sensitivity=0.25,
            ),
            seed=seed,
        ),
        SimulatedTool(
            "VS-Beta",
            ToolProfile(recall=0.92, fpr=0.35, difficulty_sensitivity=0.10),
            seed=seed,
        ),
        SimulatedTool(
            "VS-Gamma",
            ToolProfile(recall=0.40, fpr=0.01, difficulty_sensitivity=0.45),
            seed=seed,
        ),
    ]


def reference_suite(seed: int = 0) -> list[VulnerabilityDetectionTool]:
    """The eight-tool suite every reproduction experiment benchmarks."""
    return real_tool_suite(seed) + simulated_pool(seed)

"""Reference tool suites for the reproduction campaigns.

The original study benchmarked a handful of static analyzers and penetration
testers whose identities are anonymized in the authors' campaigns ("VS1",
"PT2", ...).  We mirror that: a suite of eight tools spanning the operating
space those campaigns reported —

===========  ==================================================================
``SA-Grep``   syntactic scanner, near-total recall, poor precision
``SA-Flow``   taint analysis without a sanitizer model: precise on clean code,
              false-positives every sanitized decoy
``SA-Deep``   full taint analysis with a depth budget: precise, misses deep
              chains
``PT-Spider`` dynamic tester with a broad payload dictionary
``PT-Probe``  dynamic tester with a narrow dictionary (cautious, precise)
``VS-Alpha``  simulated commercial scanner: balanced, mildly class-skewed
``VS-Beta``   simulated aggressive scanner: recall-heavy, noisy
``VS-Gamma``  simulated conservative scanner: silent unless certain
===========  ==================================================================

Construction lives in the tool-family registry
(:mod:`repro.tools.families`); the helpers here are thin lookups kept for
their call sites and their names.  Every experiment that needs "the tools
under benchmarking" uses :func:`reference_suite` so results are comparable
across experiments.
"""

from __future__ import annotations

from repro.tools.base import VulnerabilityDetectionTool
from repro.tools.families import suite_for_ecosystem
from repro.workload.ecosystems import DEFAULT_ECOSYSTEM

__all__ = ["reference_suite", "real_tool_suite", "simulated_pool"]


def real_tool_suite(seed: int = 0) -> list[VulnerabilityDetectionTool]:
    """The five detectors with actual analysis logic (families sa + pt)."""
    return suite_for_ecosystem(DEFAULT_ECOSYSTEM, seed=seed, families=("sa", "pt"))


def simulated_pool(seed: int = 0) -> list[VulnerabilityDetectionTool]:
    """Three simulated commercial scanners filling out the operating space."""
    return suite_for_ecosystem(DEFAULT_ECOSYSTEM, seed=seed, families=("vs",))


def reference_suite(seed: int = 0) -> list[VulnerabilityDetectionTool]:
    """The eight-tool suite every reproduction experiment benchmarks."""
    return suite_for_ecosystem(DEFAULT_ECOSYSTEM, seed=seed)

"""SCA-style version-matching detector.

Software-composition-analysis tools do not analyze code: they match the
*dependency manifest* against a vulnerability database.  That gives them a
characteristic blind spot — first-party code is invisible to them — and a
characteristic strength: inside the dependency surface, detection is a
database lookup, so recall is high and independent of how deep the tainted
flow runs.

We model that with two mechanisms:

- **visibility**: a unit is *dependency-shaped* or not, decided by
  :func:`is_dependency_unit` — a pure hash of the unit id against the
  ecosystem's ``dependency_fraction`` (see
  :class:`~repro.workload.ecosystems.EcosystemProfile`), so the partition
  is a property of the workload, identical for every tool and every run;
- **matching**: inside visible units, vulnerable sites are flagged with
  probability ``db_coverage`` (the database knows the affected version) and
  safe sites with probability ``version_noise`` (version-range false
  matches), both independent of site difficulty.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._rng import derive_seed, spawn
from repro.errors import ToolError
from repro.tools.base import Detection, DetectionReport, VulnerabilityDetectionTool
from repro.workload.generator import Workload

__all__ = ["is_dependency_unit", "dependency_mask", "ScaMatcher"]

_HASH_BUCKETS = 10**9


def is_dependency_unit(unit_id: str, dependency_fraction: float) -> bool:
    """Whether ``unit_id`` is dependency-shaped at the given density.

    A pure function of the unit id (seed-free SHA-256 bucket against
    ``dependency_fraction``), so every SCA-style tool sees the same
    partition of a workload and the partition survives re-generation,
    sharding and process boundaries.
    """
    if not 0.0 <= dependency_fraction <= 1.0:
        raise ToolError(
            f"dependency_fraction={dependency_fraction} must be in [0, 1]"
        )
    bucket = derive_seed(0, f"dependency-unit:{unit_id}") % _HASH_BUCKETS
    return bucket < dependency_fraction * _HASH_BUCKETS


def dependency_mask(
    unit_ids: Sequence[str], dependency_fraction: float
) -> np.ndarray:
    """:func:`is_dependency_unit` over a whole corpus, as a bool array.

    Element ``i`` equals ``is_dependency_unit(unit_ids[i], fraction)`` —
    the same hash partition, validated once and evaluated per *unit*
    rather than per site.  This is the column the batched generation
    path (:meth:`repro.workload.columnar.ShardColumns.dependency_mask`)
    exposes.
    """
    if not 0.0 <= dependency_fraction <= 1.0:
        raise ToolError(
            f"dependency_fraction={dependency_fraction} must be in [0, 1]"
        )
    cut = dependency_fraction * _HASH_BUCKETS
    return np.fromiter(
        (
            derive_seed(0, f"dependency-unit:{unit_id}") % _HASH_BUCKETS < cut
            for unit_id in unit_ids
        ),
        dtype=bool,
        count=len(unit_ids),
    )


class ScaMatcher(VulnerabilityDetectionTool):
    """Version-matching detector that only sees dependency-shaped units."""

    def __init__(
        self,
        name: str = "ScaMatcher",
        db_coverage: float = 0.9,
        version_noise: float = 0.02,
        dependency_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        super().__init__(name)
        if not 0.0 < db_coverage <= 1.0:
            raise ToolError(f"db_coverage={db_coverage} must be in (0, 1]")
        if not 0.0 <= version_noise < 1.0:
            raise ToolError(f"version_noise={version_noise} must be in [0, 1)")
        if not 0.0 <= dependency_fraction <= 1.0:
            raise ToolError(
                f"dependency_fraction={dependency_fraction} must be in [0, 1]"
            )
        self.db_coverage = db_coverage
        self.version_noise = version_noise
        self.dependency_fraction = dependency_fraction
        self.seed = seed

    def analyze(self, workload: Workload) -> DetectionReport:
        """Match dependency-shaped units against the simulated database."""
        rng = spawn(derive_seed(self.seed, self.name), f"sca:{workload.name}")
        detections: list[Detection] = []
        # The hash partition is per unit, not per site; memoize it so
        # multi-site units hash once (verdicts, and therefore the RNG
        # stream, are unchanged).
        visible: dict[str, bool] = {}
        for site in workload.truth.sites:
            unit_visible = visible.get(site.unit_id)
            if unit_visible is None:
                unit_visible = is_dependency_unit(
                    site.unit_id, self.dependency_fraction
                )
                visible[site.unit_id] = unit_visible
            if not unit_visible:
                continue
            profile = workload.profiles[site]
            probability = (
                self.db_coverage if profile.vulnerable else self.version_noise
            )
            if rng.random() < probability:
                # A database match is categorical evidence — confidence
                # reflects advisory quality, not flow analysis.
                detections.append(
                    Detection(site=site, confidence=0.6 + 0.4 * rng.random())
                )
        return self._report(workload, detections)

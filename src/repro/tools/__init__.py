"""Vulnerability detection tools: real detectors over the mini-IR plus
parametric simulated scanners."""

from repro.tools.base import Detection, DetectionReport, VulnerabilityDetectionTool
from repro.tools.dynamic_injector import DynamicInjector
from repro.tools.pattern_scanner import PatternScanner
from repro.tools.simulated import SimulatedTool, ToolProfile
from repro.tools.suite import real_tool_suite, reference_suite, simulated_pool
from repro.tools.taint_analyzer import TaintAnalyzer
from repro.tools.thresholded import (
    ThresholdedTool,
    ThresholdPoint,
    optimal_threshold,
    threshold_sweep,
)

__all__ = [
    "Detection",
    "DetectionReport",
    "VulnerabilityDetectionTool",
    "DynamicInjector",
    "PatternScanner",
    "SimulatedTool",
    "ToolProfile",
    "TaintAnalyzer",
    "ThresholdedTool",
    "ThresholdPoint",
    "optimal_threshold",
    "threshold_sweep",
    "real_tool_suite",
    "reference_suite",
    "simulated_pool",
]

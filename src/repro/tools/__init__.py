"""Vulnerability detection tools: real detectors over the mini-IR plus
parametric simulated scanners."""

from repro.tools.base import Detection, DetectionReport, VulnerabilityDetectionTool
from repro.tools.dynamic_injector import DynamicInjector
from repro.tools.ensemble import EnsembleTool
from repro.tools.families import (
    ToolFamily,
    all_families,
    build_family,
    family_names,
    get_family,
    register_family,
    suite_for_ecosystem,
)
from repro.tools.pattern_scanner import PatternScanner
from repro.tools.sca_matcher import ScaMatcher, dependency_mask, is_dependency_unit
from repro.tools.simulated import SimulatedTool, ToolProfile
from repro.tools.suite import real_tool_suite, reference_suite, simulated_pool
from repro.tools.taint_analyzer import TaintAnalyzer
from repro.tools.thresholded import (
    ThresholdedTool,
    ThresholdPoint,
    optimal_threshold,
    threshold_sweep,
)

__all__ = [
    "Detection",
    "DetectionReport",
    "VulnerabilityDetectionTool",
    "DynamicInjector",
    "EnsembleTool",
    "ToolFamily",
    "all_families",
    "build_family",
    "family_names",
    "get_family",
    "register_family",
    "suite_for_ecosystem",
    "PatternScanner",
    "ScaMatcher",
    "dependency_mask",
    "is_dependency_unit",
    "SimulatedTool",
    "ToolProfile",
    "TaintAnalyzer",
    "ThresholdedTool",
    "ThresholdPoint",
    "optimal_threshold",
    "threshold_sweep",
    "real_tool_suite",
    "reference_suite",
    "simulated_pool",
]

"""Tool-family registry: archetype suites, parameterized by ecosystem.

The reproduction's tools fall into *families* — static analyzers, dynamic
testers, simulated commercial scanners, and (new with the ecosystem
registry) DAST-style probers, SCA-style version matchers and an
ensemble/consensus meta-tool.  A :class:`ToolFamily` packages one
archetype's construction as a builder taking ``(seed, ecosystem profile)``,
so every layer (campaign helpers, the sharded engine runner, the CLI, the
R20 experiment) builds suites the same way: look the family up, call its
builder.

The historical suites are byte-compatible: ``web-services`` lists families
``("sa", "pt", "vs")`` whose builders construct exactly the tools
:func:`repro.tools.suite.reference_suite` always did, with the same names,
profiles and seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.tools.base import VulnerabilityDetectionTool
from repro.tools.dynamic_injector import DynamicInjector
from repro.tools.ensemble import EnsembleTool
from repro.tools.pattern_scanner import PatternScanner
from repro.tools.sca_matcher import ScaMatcher
from repro.tools.simulated import SimulatedTool, ToolProfile
from repro.tools.taint_analyzer import TaintAnalyzer
from repro.workload.ecosystems import (
    DEFAULT_ECOSYSTEM,
    EcosystemProfile,
    get_ecosystem,
)
from repro.workload.taxonomy import VulnerabilityType

__all__ = [
    "ToolFamily",
    "register_family",
    "get_family",
    "family_names",
    "all_families",
    "build_family",
    "suite_for_ecosystem",
]

#: A family builder: ``(seed, ecosystem profile) -> tools``.
FamilyBuilder = Callable[[int, EcosystemProfile], list[VulnerabilityDetectionTool]]


@dataclass(frozen=True)
class ToolFamily:
    """One tool archetype: a name, a description, and a suite builder."""

    key: str
    title: str
    description: str
    builder: FamilyBuilder

    def __post_init__(self) -> None:
        if not self.key:
            raise ConfigurationError("tool family key must be non-empty")

    def build(
        self, seed: int, profile: EcosystemProfile
    ) -> list[VulnerabilityDetectionTool]:
        """Construct this family's tools for ``(seed, profile)``."""
        return self.builder(seed, profile)


_REGISTRY: dict[str, ToolFamily] = {}


def register_family(family: ToolFamily) -> ToolFamily:
    """Register ``family``; re-registration must reuse the same builder."""
    existing = _REGISTRY.get(family.key)
    if existing is not None and existing.builder is not family.builder:
        raise ConfigurationError(
            f"tool family {family.key!r} registered twice with different "
            f"builders"
        )
    _REGISTRY[family.key] = family
    return family


def get_family(key: str) -> ToolFamily:
    """The registered family for ``key``; unknown keys list the registry."""
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown tool family {key!r}; known: {', '.join(family_names())}"
        ) from None


def family_names() -> list[str]:
    """Registered family keys, in registration order."""
    return list(_REGISTRY)


def all_families() -> list[ToolFamily]:
    """Every registered family, in registration order."""
    return list(_REGISTRY.values())


def build_family(
    key: str, seed: int, ecosystem: str | EcosystemProfile = DEFAULT_ECOSYSTEM
) -> list[VulnerabilityDetectionTool]:
    """Build one family's tools for ``(seed, ecosystem)``."""
    profile = (
        ecosystem
        if isinstance(ecosystem, EcosystemProfile)
        else get_ecosystem(ecosystem)
    )
    return get_family(key).build(seed, profile)


def suite_for_ecosystem(
    ecosystem: str | EcosystemProfile = DEFAULT_ECOSYSTEM,
    seed: int = 0,
    families: Sequence[str] | None = None,
) -> list[VulnerabilityDetectionTool]:
    """The tool suite of ``ecosystem``: its families' builds, concatenated.

    ``families`` restricts the suite to a subset (campaign ablations, the
    CLI's ``--tool-family``); the default is the profile's own
    ``tool_families``.  Unknown family keys fail with the registry listing.
    """
    profile = (
        ecosystem
        if isinstance(ecosystem, EcosystemProfile)
        else get_ecosystem(ecosystem)
    )
    keys = tuple(families) if families is not None else profile.tool_families
    if not keys:
        raise ConfigurationError("suite needs at least one tool family")
    suite: list[VulnerabilityDetectionTool] = []
    for key in keys:
        suite.extend(build_family(key, seed, profile))
    names = [tool.name for tool in suite]
    if len(set(names)) != len(names):
        raise ConfigurationError(
            f"families {list(keys)} produce duplicate tool names: {names}"
        )
    return suite


# ---------------------------------------------------------------------------
# Builders (the historical suites live here now; repro.tools.suite delegates)
# ---------------------------------------------------------------------------
def _build_sa(
    seed: int, profile: EcosystemProfile
) -> list[VulnerabilityDetectionTool]:
    return [
        PatternScanner(name="SA-Grep", respect_sanitizers=False),
        TaintAnalyzer(name="SA-Flow", trust_sanitizers=False),
        TaintAnalyzer(name="SA-Deep", trust_sanitizers=True, max_chain_depth=4),
    ]


def _build_pt(
    seed: int, profile: EcosystemProfile
) -> list[VulnerabilityDetectionTool]:
    return [
        DynamicInjector(
            name="PT-Spider",
            payload_coverage=0.9,
            difficulty_penalty=0.45,
            false_alarm_rate=0.03,
            seed=seed,
        ),
        DynamicInjector(
            name="PT-Probe",
            payload_coverage=0.6,
            difficulty_penalty=0.6,
            false_alarm_rate=0.005,
            seed=seed,
        ),
    ]


def _build_vs(
    seed: int, profile: EcosystemProfile
) -> list[VulnerabilityDetectionTool]:
    return [
        SimulatedTool(
            "VS-Alpha",
            ToolProfile(
                recall=0.70,
                fpr=0.10,
                recall_by_type={
                    VulnerabilityType.SQL_INJECTION: 0.85,
                    VulnerabilityType.XPATH_INJECTION: 0.45,
                },
                difficulty_sensitivity=0.25,
            ),
            seed=seed,
        ),
        SimulatedTool(
            "VS-Beta",
            ToolProfile(recall=0.92, fpr=0.35, difficulty_sensitivity=0.10),
            seed=seed,
        ),
        SimulatedTool(
            "VS-Gamma",
            ToolProfile(recall=0.40, fpr=0.01, difficulty_sensitivity=0.45),
            seed=seed,
        ),
    ]


def _build_dast(
    seed: int, profile: EcosystemProfile
) -> list[VulnerabilityDetectionTool]:
    # Low-recall, very-low-FP prober: a crawler with a shallow payload set
    # that only reports responses it can positively confirm.
    return [
        DynamicInjector(
            name="DAST-Crawl",
            payload_coverage=0.5,
            difficulty_penalty=0.75,
            false_alarm_rate=0.002,
            seed=seed,
        ),
    ]


def _build_sca(
    seed: int, profile: EcosystemProfile
) -> list[VulnerabilityDetectionTool]:
    return [
        ScaMatcher(
            name="SCA-Lock",
            db_coverage=0.9,
            version_noise=0.02,
            dependency_fraction=profile.dependency_fraction,
            seed=seed,
        ),
    ]


def _build_ensemble(
    seed: int, profile: EcosystemProfile
) -> list[VulnerabilityDetectionTool]:
    # Members are the ecosystem's other families, built exactly as they are
    # standalone, so the consensus votes over the very reports the suite's
    # individual tools produce.
    members: list[VulnerabilityDetectionTool] = []
    for key in profile.tool_families:
        if key != "ensemble":
            members.extend(build_family(key, seed, profile))
    if not members:
        raise ConfigurationError(
            f"ecosystem {profile.name!r} lists only the ensemble family; "
            f"a consensus needs member families"
        )
    quorum = max(2, math.ceil(len(members) / 2)) if len(members) > 1 else 1
    return [EnsembleTool("ENS-Vote", members=members, quorum=quorum)]


register_family(
    ToolFamily(
        key="sa",
        title="Static analyzers",
        description=(
            "Syntactic and taint-based source analysis: total-recall "
            "grep, a sanitizer-blind flow analysis, and a depth-bounded "
            "sanitizer-aware analysis."
        ),
        builder=_build_sa,
    )
)
register_family(
    ToolFamily(
        key="pt",
        title="Penetration testers",
        description=(
            "Black-box payload injectors with broad (Spider) and narrow "
            "(Probe) dictionaries."
        ),
        builder=_build_pt,
    )
)
register_family(
    ToolFamily(
        key="vs",
        title="Commercial scanners (simulated)",
        description=(
            "Parametric scanners spanning the balanced/aggressive/"
            "conservative operating points the original campaigns report."
        ),
        builder=_build_vs,
    )
)
register_family(
    ToolFamily(
        key="dast",
        title="DAST prober",
        description=(
            "Confirmation-only dynamic prober: low recall, near-zero false "
            "alarms."
        ),
        builder=_build_dast,
    )
)
register_family(
    ToolFamily(
        key="sca",
        title="SCA version matcher",
        description=(
            "Database lookup over dependency-shaped units only; "
            "difficulty-independent recall inside its visibility, blind "
            "outside it."
        ),
        builder=_build_sca,
    )
)
register_family(
    ToolFamily(
        key="ensemble",
        title="Consensus meta-tool",
        description=(
            "Majority vote over the ecosystem's other families' reports "
            "(triage-consensus style)."
        ),
        builder=_build_ensemble,
    )
)

"""Bounded taint-flow static analyzer.

A genuine data-flow analysis over the mini-IR, modelled on the second
generation of static analyzers (Fortify/FindBugs-security style): it tracks
which variables are tainted, class by class, and flags a sink only when taint
of the sink's own class reaches it.

Its *deliberate* weaknesses — each configurable — produce the realistic error
structure:

- ``max_chain_depth``: taint is dropped after this many propagation hops
  (false negatives on deep chains, like a real analysis giving up on long
  def-use chains);
- ``trust_sanitizers``: when ``False``, sanitizers are treated as ordinary
  assignments (false positives on sanitized decoys — the behaviour of tools
  without a sanitizer model);
- ``concat_taint_loss``: a deterministic variant of field insensitivity:
  when ``True``, CONCAT propagates taint only from its *first* operand, so
  taint mixed in through later operands is silently lost (false negatives,
  the way string-builder modelling bugs lose flows in real analyzers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tools.base import Detection, DetectionReport, VulnerabilityDetectionTool
from repro.workload.code_model import CodeUnit, SinkSite, StatementKind
from repro.workload.generator import Workload
from repro.workload.taxonomy import VulnerabilityType

__all__ = ["TaintAnalyzer"]


@dataclass(frozen=True, slots=True)
class _Taint:
    """Taint label: the vulnerability classes a value is dangerous for, plus
    the number of propagation hops it has survived."""

    classes: frozenset[VulnerabilityType]
    depth: int


class TaintAnalyzer(VulnerabilityDetectionTool):
    """Class-aware taint propagation with configurable unsoundness."""

    def __init__(
        self,
        name: str = "TaintAnalyzer",
        max_chain_depth: int | None = None,
        trust_sanitizers: bool = True,
        concat_taint_loss: bool = False,
        confidence: float = 0.9,
    ) -> None:
        super().__init__(name)
        if max_chain_depth is not None and max_chain_depth < 0:
            raise ValueError(f"max_chain_depth={max_chain_depth} must be >= 0 or None")
        self.max_chain_depth = max_chain_depth
        self.trust_sanitizers = trust_sanitizers
        self.concat_taint_loss = concat_taint_loss
        self.confidence = confidence

    def analyze(self, workload: Workload) -> DetectionReport:
        """Trace source-to-sink flows; flag sites reached by untrusted data."""
        detections: list[Detection] = []
        for unit in workload.units:
            detections.extend(self._analyze_unit(unit))
        return self._report(workload, detections)

    def _analyze_unit(self, unit: CodeUnit) -> list[Detection]:
        environment: dict[str, _Taint] = {}
        findings: list[Detection] = []
        all_classes = frozenset(VulnerabilityType)
        for index, statement in enumerate(unit.statements):
            kind = statement.kind
            if kind is StatementKind.INPUT:
                environment[statement.target] = _Taint(all_classes, 0)  # type: ignore[index]
            elif kind is StatementKind.CONST:
                environment.pop(statement.target, None)  # type: ignore[arg-type]
            elif kind is StatementKind.ASSIGN:
                self._propagate(environment, statement.target, [statement.sources[0]])
            elif kind is StatementKind.CONCAT:
                if self.concat_taint_loss:
                    # Unsound: analysis only follows the first operand.
                    self._propagate(environment, statement.target, [statement.sources[0]])
                else:
                    self._propagate(environment, statement.target, list(statement.sources))
            elif kind is StatementKind.SANITIZE:
                source_taint = environment.get(statement.sources[0])
                if source_taint is None:
                    environment.pop(statement.target, None)  # type: ignore[arg-type]
                elif self.trust_sanitizers:
                    remaining = source_taint.classes - {statement.vuln_type}
                    if remaining:
                        environment[statement.target] = _Taint(  # type: ignore[index]
                            remaining, source_taint.depth + 1
                        )
                        self._enforce_depth(environment, statement.target)
                    else:
                        environment.pop(statement.target, None)  # type: ignore[arg-type]
                else:
                    # Sanitizer treated as a plain assignment.
                    self._propagate(environment, statement.target, [statement.sources[0]])
            elif kind is StatementKind.SINK:
                taint = environment.get(statement.sources[0])
                if taint is not None and statement.vuln_type in taint.classes:
                    site = SinkSite(unit.unit_id, index, statement.vuln_type)  # type: ignore[arg-type]
                    findings.append(
                        Detection(site=site, confidence=self._confidence_at(taint))
                    )
        return findings

    def _confidence_at(self, taint: _Taint) -> float:
        """Confidence decays with propagation depth.

        A flow the analyzer tracked through many hops is more likely to be
        an artifact of its approximations — the standard rationale behind
        severity/confidence scores in real static analyzers, and what gives
        the tool a non-trivial ranking for the ROC analysis.
        """
        return max(0.05, self.confidence * (0.93**taint.depth))

    def _propagate(
        self, environment: dict[str, _Taint], target: str | None, sources: list[str]
    ) -> None:
        classes: frozenset[VulnerabilityType] = frozenset()
        depth = 0
        for source in sources:
            taint = environment.get(source)
            if taint is not None:
                classes |= taint.classes
                depth = max(depth, taint.depth)
        if classes:
            environment[target] = _Taint(classes, depth + 1)  # type: ignore[index]
            self._enforce_depth(environment, target)
        else:
            environment.pop(target, None)  # type: ignore[arg-type]

    def _enforce_depth(self, environment: dict[str, _Taint], target: str | None) -> None:
        """Drop taint that has travelled past the configured depth budget."""
        if self.max_chain_depth is None:
            return
        taint = environment.get(target)  # type: ignore[arg-type]
        if taint is not None and taint.depth > self.max_chain_depth:
            environment.pop(target, None)  # type: ignore[arg-type]

"""Command-line interface: run reproduction experiments from the shell.

Usage::

    python -m repro list
    python -m repro run R6 R11            # run specific experiments
    python -m repro run all --seed 7      # everything, custom seed
    python -m repro run R8 --out results  # also write results/<id>.txt

Experiments R1-R11 reproduce the paper's tables and figures; R12-R14 are
extensions.  All runs are deterministic in ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro.bench.experiments import ALL_EXPERIMENTS, DEFAULT_SEED

__all__ = ["main", "build_parser"]

#: Experiments that take no ``seed`` keyword (R1 is static, R6 analytic).
_SEEDLESS = {"R1", "R6"}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction experiments for 'On the Metrics for Benchmarking "
            "Vulnerability Detection Tools' (DSN 2015)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        metavar="ID",
        help="experiment ids (e.g. R6 R11) or 'all'",
    )
    run_parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=f"master seed (default {DEFAULT_SEED})",
    )
    run_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="also write each rendered report to DIR/<id>.txt",
    )
    run_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the rendered tables (timings only)",
    )
    run_parser.add_argument(
        "--format",
        choices=("text", "md"),
        default="text",
        dest="output_format",
        help="output format for --out files (text or GitHub markdown)",
    )
    return parser


def _normalize_ids(requested: Sequence[str]) -> list[str]:
    if any(item.lower() == "all" for item in requested):
        return list(ALL_EXPERIMENTS)
    ids = []
    for item in requested:
        key = item.upper()
        if key not in ALL_EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {item!r}; known: {', '.join(ALL_EXPERIMENTS)}"
            )
        ids.append(key)
    return ids


def _cmd_list() -> int:
    titles = {
        "R1": "Metric catalog (table)",
        "R2": "Good-metric properties matrix (table)",
        "R3": "Reference benchmarking campaign (table)",
        "R4": "Metric values per tool (table)",
        "R5": "Metric-induced tool rankings + tau matrix (table)",
        "R6": "Metric behaviour vs prevalence (figure)",
        "R7": "Discriminative power (figure)",
        "R8": "Scenario analysis, analytical selection (table)",
        "R9": "MCDA (AHP) validation with expert judgment (table)",
        "R10": "MCDA weight sensitivity (figure)",
        "R11": "Analytical vs MCDA agreement (table, headline)",
        "R12": "Per-type breakdown and aggregation (extension)",
        "R13": "Threshold-free ranking metrics (extension)",
        "R14": "Statistical significance of tool differences (extension)",
        "R15": "Difficulty model validation (extension)",
        "R16": "Seed stability of the conclusions (extension)",
        "R17": "Cross-workload ranking stability (extension)",
        "R18": "Scenario-optimal confidence thresholds (extension)",
        "R19": "Tool run noise vs sampling noise (extension)",
    }
    for key in ALL_EXPERIMENTS:
        print(f"{key:4s} {titles.get(key, '')}")
    return 0


def _cmd_run(
    ids: list[str], seed: int, out: Path | None, quiet: bool, output_format: str
) -> int:
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
    for key in ids:
        driver = ALL_EXPERIMENTS[key]
        started = time.perf_counter()
        result = driver() if key in _SEEDLESS else driver(seed=seed)
        elapsed = time.perf_counter() - started
        if not quiet:
            print(result.render())
            print()
        print(f"[{key} completed in {elapsed:.1f}s]", file=sys.stderr)
        if out is not None:
            if output_format == "md":
                from repro.reporting.markdown import experiment_to_markdown

                rendered = experiment_to_markdown(
                    result.experiment_id, result.title, result.sections
                )
                (out / f"{key.lower()}.md").write_text(rendered, encoding="utf-8")
            else:
                (out / f"{key.lower()}.txt").write_text(
                    result.render() + "\n", encoding="utf-8"
                )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(
        _normalize_ids(args.experiments),
        args.seed,
        args.out,
        args.quiet,
        args.output_format,
    )

"""Command-line interface: run reproduction experiments from the shell.

Usage::

    python -m repro list
    python -m repro run R6 R11            # run specific experiments
    python -m repro run all --seed 7      # everything, custom seed
    python -m repro run R8 --out results  # also write results/<id>.txt
    python -m repro run all --jobs 4      # parallel over the dependency graph
    python -m repro run all --jobs 4 --executor process   # multi-core
    python -m repro run all --cache-dir .cache --manifest run.json
    python -m repro run all --trace t.json --metrics-out m.json
    python -m repro run R3 R4 --profile   # cProfile each experiment -> results/
    python -m repro run all --keep-going --retries 2 --manifest run.json
    python -m repro run --resume run.json # re-run only what didn't complete
    python -m repro run --scale 1000000 --shard-size 10000  # streaming campaign
    python -m repro run --scale 5000 --ecosystem npm-deps   # another ecosystem
    python -m repro run --scale 5000 --ecosystem all        # every ecosystem
    python -m repro run --scale 1000000 --wal run.wal  # crash-safe journal
    python -m repro run --resume run.wal  # replay journal, run the rest
    python -m repro run --list-ecosystems  # print the registries
    python -m repro stats m.json          # print a metrics dump as tables
    python -m repro stats --cache-dir .cache  # quarantined-cache summary

Experiments R1-R11 reproduce the paper's tables and figures; R12-R19 are
extensions.  All runs are deterministic in ``--seed`` — ``--jobs N``
produces byte-identical reports to a serial run, only faster.  Everything
the CLI knows about an experiment (title, artifact kind, seedlessness,
dependencies) comes from its registered
:class:`~repro.bench.engine.spec.ExperimentSpec`.

Failure handling: ``--keep-going`` isolates failures (dependents are
cascade-skipped, independents still run), ``--retries N`` re-attempts at
the same seed, ``--timeout SECONDS`` bounds each attempt, and the exit
code is non-zero whenever any experiment did not complete.  ``--resume
MANIFEST`` re-executes only the non-completed experiments of a prior run.

Scale: ``--scale N`` switches ``run`` into sharded streaming-campaign mode
— an ecosystem's tool suite is evaluated over an N-unit corpus partitioned
into ``--shard-size`` shards, with per-shard retry/keep-going/resume
semantics and memory bounded by the shard size (see ``docs/scaling.md``).
``--resume`` detects shard manifests and write-ahead journals by their
schema tag/magic, so the same flag resumes every kind of run.

Crash safety: ``--wal FILE`` journals every folded shard durably, so even
a ``kill -9`` of the campaign parent resumes bit-identically from the
journal; SIGTERM/SIGINT drain in-flight shards and still write the
partial ``--manifest``; ``--timeout`` on ``--scale`` runs arms a
heartbeat watchdog that times out hung (silent) workers without
penalizing slow ones; and dead workers are supervised — the pool is
rebuilt and crashed shards re-dispatched, quarantining any shard that
keeps killing workers (see ``docs/benchmarking.md``, "Crash recovery").

Ecosystems: ``--ecosystem NAME`` selects which registered
:class:`~repro.workload.ecosystems.EcosystemProfile` shapes the corpus and
the suite (``all`` loops every registered ecosystem); ``--tool-family KEY``
(repeatable) restricts the suite to specific registered families; and
``--list-ecosystems`` prints both registries.  Unknown names fail with a
one-line error listing what is registered.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.bench.engine.scheduler import run_experiments
from repro.bench.engine.spec import all_specs, experiment_ids
from repro.bench.engine.transport import DEFAULT_CHUNK
from repro.bench.result import DEFAULT_SEED

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction experiments for 'On the Metrics for Benchmarking "
            "Vulnerability Detection Tools' (DSN 2015)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids (e.g. R6 R11) or 'all' (optional with --resume)",
    )
    run_parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=f"master seed (default {DEFAULT_SEED})",
    )
    run_parser.add_argument(
        "--scale",
        type=int,
        default=None,
        metavar="N",
        help=(
            "instead of experiments, run a sharded streaming campaign over "
            "N workload units (memory bounded by --shard-size, totals "
            "bit-identical to the in-memory path; see docs/scaling.md)"
        ),
    )
    run_parser.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="K",
        help=(
            "units per shard for --scale runs (default 10000); any shard "
            "is regenerable in isolation from its derived seed"
        ),
    )
    run_parser.add_argument(
        "--ecosystem",
        default=None,
        metavar="NAME",
        help=(
            "ecosystem regime for --scale campaigns: a registered name "
            "(see --list-ecosystems), or 'all' to run every registered "
            "ecosystem in sequence (default: web-services)"
        ),
    )
    run_parser.add_argument(
        "--tool-family",
        action="append",
        default=None,
        metavar="KEY",
        dest="tool_families",
        help=(
            "restrict the --scale suite to this registered tool family "
            "(repeatable; default: the ecosystem's own family list)"
        ),
    )
    run_parser.add_argument(
        "--list-ecosystems",
        action="store_true",
        help="print the registered ecosystems and tool families, then exit",
    )
    run_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="also write each rendered report to DIR/<id>.txt",
    )
    run_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the rendered tables (timings only)",
    )
    run_parser.add_argument(
        "--format",
        choices=("text", "md"),
        default="text",
        dest="output_format",
        help="output format for --out files (text or GitHub markdown)",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run independent experiments in N threads (default 1: serial)",
    )
    run_parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help=(
            "how --jobs parallelism executes: 'thread' (default) shares one "
            "in-memory artifact store; 'process' uses worker processes for "
            "CPU-bound speedups (pair with --cache-dir to share artifacts)"
        ),
    )
    run_parser.add_argument(
        "--transport",
        choices=("auto", "shm", "pickle"),
        default="auto",
        help=(
            "how --scale process-executor results cross the process "
            "boundary: 'shm' ships cells through a shared-memory ring, "
            "'pickle' uses the legacy object path, 'auto' (default) picks "
            "shm where supported; both are byte-identical"
        ),
    )
    run_parser.add_argument(
        "--chunk",
        type=int,
        default=DEFAULT_CHUNK,
        metavar="C",
        help=(
            f"submission window multiplier for --scale runs: keep up to "
            f"jobs*C shard futures in flight (default {DEFAULT_CHUNK})"
        ),
    )
    run_parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="persist workloads/campaigns to DIR so warm re-runs skip them",
    )
    run_parser.add_argument(
        "--manifest",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the run manifest (timings, cache hits, seeds) to FILE",
    )
    run_parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "record spans and write a Chrome-trace-format timeline to FILE "
            "(open in chrome://tracing or https://ui.perfetto.dev)"
        ),
    )
    run_parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the run's counters/gauges/histograms to FILE as JSON",
    )
    run_parser.add_argument(
        "--profile",
        type=Path,
        nargs="?",
        const=Path("results"),
        default=None,
        metavar="DIR",
        help=(
            "wrap each experiment in cProfile; write per-experiment .pstats "
            "plus a hotspots.txt table to DIR (default: results/)"
        ),
    )
    run_parser.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "on experiment failure, keep running experiments that do not "
            "depend on the failed one (dependents are skipped); the exit "
            "code is still non-zero"
        ),
    )
    run_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "re-attempt a failed experiment up to N extra times at the same "
            "seed (default 0; timeouts are never retried)"
        ),
    )
    run_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-attempt wall-clock budget in seconds; experiments past it "
            "are recorded with status 'timeout' (never retried)"
        ),
    )
    run_parser.add_argument(
        "--resume",
        type=Path,
        default=None,
        metavar="MANIFEST",
        help=(
            "re-execute only the non-completed experiments of a prior run's "
            "--manifest file (or the missing shards of a --wal journal); "
            "seed is taken from the manifest, completed records are carried "
            "over verbatim"
        ),
    )
    run_parser.add_argument(
        "--wal",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "for --scale runs: append every folded shard to an fsync'd "
            "write-ahead journal at FILE, so a crashed (even kill -9'd) "
            "campaign resumes bit-identically with --resume FILE"
        ),
    )
    run_parser.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="SPEC",
        dest="inject_faults",
        help=(
            "testing only: inject a deterministic fault, e.g. 'R3' (always "
            "fail), 'R3:fail=2' (fail first 2 attempts), 'R3:hang=1.5' "
            "(sleep 1.5s per attempt); repeatable"
        ),
    )

    stats_parser = subparsers.add_parser(
        "stats", help="print a --metrics-out dump as readable tables"
    )
    stats_parser.add_argument(
        "metrics_file",
        type=Path,
        nargs="?",
        default=None,
        metavar="FILE",
        help="a --metrics-out JSON dump",
    )
    stats_parser.add_argument(
        "--prefix",
        default="",
        metavar="PREFIX",
        help="only show series whose name starts with PREFIX (e.g. engine.cache.)",
    )
    stats_parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "also summarize DIR's quarantined (.corrupt) cache files — "
            "count, total bytes, and the retention cap"
        ),
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "run the campaign service: submit, queue and query sharded "
            "campaigns over HTTP (see docs/serve.md)"
        ),
    )
    serve_parser.add_argument(
        "--state-dir",
        type=Path,
        required=True,
        metavar="DIR",
        help=(
            "durable service state: job records, per-job shard journals "
            "and finished results live here; restart with the same DIR "
            "to resume every unfinished campaign"
        ),
    )
    serve_parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1; put a proxy in front for more)",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help=(
            "bind port (default 8642; 0 binds an ephemeral port, "
            "announced on stdout)"
        ),
    )
    serve_parser.add_argument(
        "--serve-workers",
        type=int,
        default=1,
        metavar="N",
        help="campaigns executing concurrently (default 1)",
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard parallelism inside each campaign (default 1)",
    )
    serve_parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="campaign executor (as for 'run --scale'; default thread)",
    )
    serve_parser.add_argument(
        "--quantum",
        type=int,
        default=None,
        metavar="UNITS",
        help=(
            "deficit-round-robin top-up per scheduling turn, in workload "
            "units (default 10000; see docs/serve.md on fairness)"
        ),
    )
    serve_parser.add_argument(
        "--result-cache",
        type=int,
        default=None,
        metavar="N",
        help="finished results held in the in-memory hot cache (default 256)",
    )
    serve_parser.add_argument(
        "--tenant-weight",
        action="append",
        default=None,
        metavar="TENANT=W",
        dest="tenant_weights",
        help=(
            "scheduling weight for one tenant, e.g. 'ci=2.5' (repeatable; "
            "unlisted tenants weigh 1.0)"
        ),
    )
    return parser


def _normalize_ids(requested: Sequence[str]) -> list[str]:
    known = experiment_ids()
    if any(item.lower() == "all" for item in requested):
        return known
    ids = []
    for item in requested:
        key = item.upper()
        if key not in known:
            raise SystemExit(
                f"unknown experiment {item!r}; known: {', '.join(known)}"
            )
        ids.append(key)
    return ids


def _cmd_list() -> int:
    for spec in all_specs():
        print(f"{spec.experiment_id:4s} {spec.list_line}")
    return 0


def _cmd_run(
    ids: list[str],
    seed: int,
    out: Path | None,
    quiet: bool,
    output_format: str,
    jobs: int,
    cache_dir: Path | None,
    manifest_path: Path | None,
    trace_path: Path | None = None,
    metrics_path: Path | None = None,
    profile_dir: Path | None = None,
    executor: str = "thread",
    keep_going: bool = False,
    retries: int = 0,
    timeout: float | None = None,
    resume_path: Path | None = None,
    inject_faults: list[str] | None = None,
) -> int:
    from repro.bench.engine.faults import FaultPlan, parse_fault
    from repro.bench.engine.manifest import RunManifest
    from repro.errors import EngineError
    from repro.obs import Observability, Profiler, Tracer
    from repro.persist import load_json

    if jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {jobs}")
    if profile_dir is not None and executor == "process":
        raise SystemExit(
            "--profile requires --executor thread (cProfile sessions cannot "
            "be merged across worker processes)"
        )
    resume_from = None
    if resume_path is not None:
        if not resume_path.exists():
            raise SystemExit(f"no such manifest: {resume_path}")
        resume_from = RunManifest.from_dict(load_json(resume_path))
        ids = resume_from.experiment_ids
    faults = (
        FaultPlan(tuple(parse_fault(spec) for spec in inject_faults))
        if inject_faults
        else None
    )
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
    profiler = Profiler(profile_dir) if profile_dir is not None else None
    obs = Observability(
        tracer=Tracer(enabled=trace_path is not None), profiler=profiler
    )
    try:
        run = run_experiments(
            ids,
            seed=seed,
            jobs=jobs,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
            obs=obs,
            executor=executor,
            keep_going=keep_going,
            retries=retries,
            timeout=timeout,
            faults=faults,
            resume_from=resume_from,
        )
    except EngineError as error:
        raise SystemExit(f"run aborted — {error}") from error
    for key in ids:
        record = run.manifest.record_for(key)
        if not record.completed:
            if record.status == "skipped":
                print(f"[{key} skipped: {record.skip_reason}]", file=sys.stderr)
            else:
                failure = record.failure
                detail = (
                    f"{failure.error_type}: {failure.message}"
                    if failure is not None
                    else record.status
                )
                print(
                    f"[{key} {record.status} after {record.attempts} "
                    f"attempt{'s' if record.attempts != 1 else ''}: {detail}]",
                    file=sys.stderr,
                )
            continue
        result = run.results.get(key)
        if result is None:
            # Carried over verbatim from the resumed manifest; its rendered
            # report was produced by the original run.
            print(
                f"[{key} completed in {record.wall_seconds:.1f}s (resumed)]",
                file=sys.stderr,
            )
            continue
        if not quiet:
            print(result.render())
            print()
        print(
            f"[{key} completed in {record.wall_seconds:.1f}s]", file=sys.stderr
        )
        if out is not None:
            if output_format == "md":
                from repro.reporting.markdown import experiment_to_markdown

                rendered = experiment_to_markdown(
                    result.experiment_id, result.title, result.sections
                )
                (out / f"{key.lower()}.md").write_text(rendered, encoding="utf-8")
            else:
                (out / f"{key.lower()}.txt").write_text(
                    result.render() + "\n", encoding="utf-8"
                )
    if manifest_path is not None:
        from repro.persist import save_json

        save_json(run.manifest.to_dict(), manifest_path)
    if trace_path is not None:
        from repro.persist import save_json

        save_json(obs.tracer.to_chrome_trace(), trace_path)
        print(
            f"[trace: {len(obs.tracer)} spans -> {trace_path}]", file=sys.stderr
        )
    if metrics_path is not None:
        from repro.persist import save_json

        save_json(obs.metrics.to_dict(), metrics_path)
        print(f"[metrics -> {metrics_path}]", file=sys.stderr)
    if profiler is not None:
        hotspots = profiler.write_hotspots()
        print(
            f"[profiles: {len(profiler.reports)} .pstats + {hotspots}]",
            file=sys.stderr,
        )
    print(f"[{run.manifest.summary_line()}]", file=sys.stderr)
    return 0 if run.manifest.ok else 1


def _cmd_run_scale(
    scale: int | None,
    shard_size: int,
    seed: int,
    quiet: bool,
    jobs: int,
    executor: str,
    cache_dir: Path | None,
    manifest_path: Path | None,
    trace_path: Path | None,
    metrics_path: Path | None,
    keep_going: bool,
    retries: int,
    resume_path: Path | None,
    inject_faults: list[str] | None,
    ecosystem: str | None = None,
    tool_families: list[str] | None = None,
    transport: str = "auto",
    chunk: int = DEFAULT_CHUNK,
    timeout: float | None = None,
    wal_path: Path | None = None,
) -> int:
    from repro.bench.engine.faults import FaultPlan, parse_fault
    from repro.bench.engine.shards import ShardRunManifest, run_sharded_campaign
    from repro.bench.engine.supervise import graceful_shutdown
    from repro.bench.engine.wal import is_journal
    from repro.errors import EngineError, PersistError
    from repro.obs import Observability, Tracer
    from repro.persist import load_json
    from repro.reporting.tables import format_table

    if jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {jobs}")
    resume_from = None
    resume_journal = None
    if resume_path is not None:
        if not resume_path.exists():
            raise SystemExit(f"no such manifest: {resume_path}")
        if is_journal(resume_path):
            resume_journal = str(resume_path)
        else:
            resume_from = ShardRunManifest.from_dict(load_json(resume_path))
    elif scale is None or scale < 1:
        raise SystemExit(f"--scale must be >= 1, got {scale}")
    if shard_size < 1:
        raise SystemExit(f"--shard-size must be >= 1, got {shard_size}")
    if chunk < 1:
        raise SystemExit(f"--chunk must be >= 1, got {chunk}")
    faults = (
        FaultPlan(tuple(parse_fault(spec) for spec in inject_faults))
        if inject_faults
        else None
    )
    from repro.workload.ecosystems import DEFAULT_ECOSYSTEM

    obs = Observability(tracer=Tracer(enabled=trace_path is not None))
    try:
        with graceful_shutdown() as shutdown:
            run = run_sharded_campaign(
                scale=scale,
                shard_size=shard_size,
                seed=seed,
                jobs=jobs,
                executor=executor,
                keep_going=keep_going,
                retries=retries,
                cache_dir=str(cache_dir) if cache_dir is not None else None,
                obs=obs,
                faults=faults,
                resume_from=resume_from,
                resume_journal=resume_journal,
                wal_path=str(wal_path) if wal_path is not None else None,
                timeout=timeout,
                shutdown=shutdown,
                ecosystem=(
                    ecosystem if ecosystem is not None else DEFAULT_ECOSYSTEM
                ),
                tool_families=(
                    tuple(tool_families) if tool_families is not None else None
                ),
                transport=transport,
                chunk=chunk,
            )
    except (EngineError, PersistError) as error:
        raise SystemExit(f"run aborted — {error}") from error
    for record in run.manifest.records:
        if record.completed:
            continue
        failure = record.failure
        detail = (
            f"{failure.error_type}: {failure.message}"
            if failure is not None
            else record.status
        )
        print(
            f"[shard {record.index} {record.status} after {record.attempts} "
            f"attempt{'s' if record.attempts != 1 else ''}: {detail}]",
            file=sys.stderr,
        )
    if run.interrupted:
        info = run.manifest.extra["interrupted"]
        resume_hint = wal_path if wal_path is not None else manifest_path
        hint = f"; resume with --resume {resume_hint}" if resume_hint else ""
        print(
            f"[interrupted ({info['reason']}): "
            f"{len(info['unfinished'])} shards unfinished{hint}]",
            file=sys.stderr,
        )
    totals = run.totals
    if totals is not None and not quiet:
        rows = [
            [
                name,
                int(confusion.tp),
                int(confusion.fp),
                int(confusion.fn),
                int(confusion.tn),
                int(confusion.tp + confusion.fp),
            ]
            for name, confusion in zip(totals.tool_names, totals.confusions)
        ]
        print(
            format_table(
                headers=["tool", "TP", "FP", "FN", "TN", "reported"],
                rows=rows,
                title=(
                    f"Sharded campaign totals [{totals.ecosystem}] — "
                    f"{totals.n_units} units in "
                    f"{totals.n_shards} shards: {totals.n_sites} sites, "
                    f"prevalence {totals.prevalence:.3f}"
                ),
            )
        )
        print()
    if manifest_path is not None:
        from repro.persist import save_json

        save_json(run.manifest.to_dict(), manifest_path)
    if trace_path is not None:
        from repro.persist import save_json

        save_json(obs.tracer.to_chrome_trace(), trace_path)
        print(
            f"[trace: {len(obs.tracer)} spans -> {trace_path}]", file=sys.stderr
        )
    if metrics_path is not None:
        from repro.persist import save_json

        save_json(obs.metrics.to_dict(), metrics_path)
        print(f"[metrics -> {metrics_path}]", file=sys.stderr)
    print(f"[{run.manifest.summary_line()}]", file=sys.stderr)
    return 0 if run.manifest.ok else 1


def _cmd_list_ecosystems() -> int:
    from repro.tools.families import all_families
    from repro.workload.ecosystems import all_ecosystems

    print("ecosystems:")
    for profile in all_ecosystems():
        print(
            f"  {profile.name:14s} {profile.title} "
            f"(prevalence {profile.prevalence:.3f}; "
            f"families: {', '.join(profile.tool_families)})"
        )
    print("tool families:")
    for family in all_families():
        print(f"  {family.key:10s} {family.title}")
    return 0


def _validate_ecosystem_args(args: "argparse.Namespace") -> None:
    """Fail fast on unknown/ill-combined --ecosystem / --tool-family."""
    from repro.errors import ConfigurationError
    from repro.tools.families import get_family
    from repro.workload.ecosystems import get_ecosystem

    sharded = args.scale is not None
    if args.ecosystem is not None:
        if not sharded:
            raise SystemExit("--ecosystem requires --scale")
        if args.resume is not None:
            raise SystemExit(
                "--resume restores the manifest's own ecosystem; don't "
                "pass --ecosystem alongside it"
            )
        if args.ecosystem != "all":
            try:
                get_ecosystem(args.ecosystem)
            except ConfigurationError as error:
                raise SystemExit(str(error)) from error
        elif args.manifest is not None:
            raise SystemExit(
                "--ecosystem all runs several campaigns; --manifest would "
                "overwrite one file per run — pick a single ecosystem"
            )
    if args.tool_families is not None:
        if not sharded:
            raise SystemExit("--tool-family requires --scale")
        for key in args.tool_families:
            try:
                get_family(key)
            except ConfigurationError as error:
                raise SystemExit(str(error)) from error


def _cmd_stats(
    metrics_file: Path | None, prefix: str, cache_dir: Path | None = None
) -> int:
    if metrics_file is None and cache_dir is None:
        raise SystemExit("stats needs a metrics FILE and/or --cache-dir DIR")
    if metrics_file is not None:
        from repro.obs import MetricsRegistry
        from repro.persist import load_json

        if not metrics_file.exists():
            raise SystemExit(f"no such metrics dump: {metrics_file}")
        registry = MetricsRegistry.from_dict(load_json(metrics_file))
        print(registry.render(prefix))
    if cache_dir is not None:
        from repro.bench.engine.artifacts import CORRUPT_RETENTION_CAP

        if not cache_dir.is_dir():
            raise SystemExit(f"no such cache dir: {cache_dir}")
        corrupt = sorted(cache_dir.glob("*.corrupt"))
        total = sum(path.stat().st_size for path in corrupt)
        print(
            f"quarantined cache files: {len(corrupt)} "
            f"({total} bytes, retention cap {CORRUPT_RETENTION_CAP})"
        )
        for path in corrupt:
            print(f"  {path.name}")
    return 0


def _parse_tenant_weights(specs: Sequence[str] | None) -> dict[str, float]:
    """Parse repeated ``--tenant-weight NAME=W`` flags."""
    weights: dict[str, float] = {}
    for spec in specs or ():
        tenant, sep, raw = spec.partition("=")
        try:
            weight = float(raw)
        except ValueError:
            weight = 0.0
        if not sep or not tenant or not weight > 0:
            raise SystemExit(
                f"--tenant-weight wants TENANT=W with W > 0, got {spec!r}"
            )
        weights[tenant] = weight
    return weights


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.app import run_app
    from repro.serve.service import CampaignService, ServiceConfig

    if args.serve_workers < 1:
        raise SystemExit(
            f"--serve-workers must be >= 1, got {args.serve_workers}"
        )
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.quantum is not None and args.quantum < 1:
        raise SystemExit(f"--quantum must be >= 1, got {args.quantum}")
    if args.result_cache is not None and args.result_cache < 1:
        raise SystemExit(
            f"--result-cache must be >= 1, got {args.result_cache}"
        )
    from repro.serve.cache import DEFAULT_CACHE_CAPACITY
    from repro.serve.fairness import DEFAULT_QUANTUM

    config = ServiceConfig(
        state_dir=args.state_dir,
        workers=args.serve_workers,
        jobs=args.jobs,
        executor=args.executor,
        quantum=args.quantum if args.quantum is not None else DEFAULT_QUANTUM,
        cache_capacity=(
            args.result_cache
            if args.result_cache is not None
            else DEFAULT_CACHE_CAPACITY
        ),
        weights=_parse_tenant_weights(args.tenant_weights),
    )
    service = CampaignService(config)
    recovered = service.start()
    for record in recovered:
        print(
            f"[serve] recovered {record.job_id} "
            f"(tenant={record.tenant}, scale={record.spec.scale})",
            file=sys.stderr,
        )
    try:
        asyncio.run(
            run_app(
                service,
                host=args.host,
                port=args.port,
                install_signals=True,
            )
        )
    except KeyboardInterrupt:
        service.stop()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "stats":
        return _cmd_stats(args.metrics_file, args.prefix, args.cache_dir)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.list_ecosystems:
        return _cmd_list_ecosystems()
    _validate_ecosystem_args(args)
    resume_schema = None
    if args.resume is not None and args.resume.exists():
        from repro.persist import sniff_schema

        resume_schema = sniff_schema(args.resume)
    sharded = args.scale is not None or (resume_schema or "").startswith(
        "repro/shard-"
    )
    if sharded:
        if args.experiments:
            raise SystemExit(
                "--scale runs a sharded campaign, not experiments; don't "
                "pass experiment ids alongside it"
            )
        if args.scale is not None and args.resume is not None:
            raise SystemExit(
                "--resume re-runs the shard manifest's own plan; don't "
                "pass --scale alongside it"
            )
        if args.out is not None:
            raise SystemExit("--out applies to experiment runs, not --scale")
        if args.profile is not None:
            raise SystemExit(
                "--profile applies to experiment runs, not --scale"
            )
        if args.wal is not None and args.ecosystem == "all":
            raise SystemExit(
                "--ecosystem all runs several campaigns; --wal would "
                "interleave them in one journal — pick a single ecosystem"
            )
        from repro.persist import WAL_SCHEMA

        if args.wal is not None and resume_schema == WAL_SCHEMA:
            raise SystemExit(
                "--resume JOURNAL already appends the remaining shards to "
                "that journal; don't pass --wal alongside it"
            )
        from repro.workload.sharded import DEFAULT_SHARD_SIZE

        shard_size = (
            args.shard_size if args.shard_size is not None else DEFAULT_SHARD_SIZE
        )
        if args.ecosystem == "all":
            from repro.workload.ecosystems import ecosystem_names

            worst = 0
            for name in ecosystem_names():
                print(f"[ecosystem {name}]", file=sys.stderr)
                code = _cmd_run_scale(
                    args.scale,
                    shard_size,
                    args.seed,
                    args.quiet,
                    args.jobs,
                    args.executor,
                    args.cache_dir,
                    None,
                    args.trace,
                    args.metrics_out,
                    args.keep_going,
                    args.retries,
                    None,
                    args.inject_faults,
                    ecosystem=name,
                    tool_families=args.tool_families,
                    transport=args.transport,
                    chunk=args.chunk,
                    timeout=args.timeout,
                )
                worst = max(worst, code)
            return worst
        return _cmd_run_scale(
            args.scale,
            shard_size,
            args.seed,
            args.quiet,
            args.jobs,
            args.executor,
            args.cache_dir,
            args.manifest,
            args.trace,
            args.metrics_out,
            args.keep_going,
            args.retries,
            args.resume,
            args.inject_faults,
            ecosystem=args.ecosystem,
            tool_families=args.tool_families,
            transport=args.transport,
            chunk=args.chunk,
            timeout=args.timeout,
            wal_path=args.wal,
        )
    if args.shard_size is not None:
        raise SystemExit("--shard-size requires --scale")
    if args.wal is not None:
        raise SystemExit("--wal applies to --scale runs")
    if args.transport != "auto":
        raise SystemExit("--transport applies to --scale runs")
    if args.chunk != DEFAULT_CHUNK:
        raise SystemExit("--chunk applies to --scale runs")
    if not args.experiments and args.resume is None:
        raise SystemExit(
            "experiment ids required (e.g. 'repro run R6 R11' or "
            "'repro run all'), unless resuming with --resume MANIFEST"
        )
    if args.experiments and args.resume is not None:
        raise SystemExit(
            "--resume re-runs the manifest's own experiment set; "
            "don't pass experiment ids alongside it"
        )
    return _cmd_run(
        _normalize_ids(args.experiments) if args.experiments else [],
        args.seed,
        args.out,
        args.quiet,
        args.output_format,
        args.jobs,
        args.cache_dir,
        args.manifest,
        args.trace,
        args.metrics_out,
        args.profile,
        args.executor,
        args.keep_going,
        args.retries,
        args.timeout,
        args.resume,
        args.inject_faults,
    )

"""Bootstrap machinery for benchmark results.

A metric is only useful for tool selection if, under the sampling noise of a
finite workload, it still *separates* tools whose true quality differs — the
"discriminating" characteristic of a good metric.  This module provides the
resampling utilities behind experiment R7 (discriminative power) and the
repeatability property check in R2.

:func:`bootstrap_metric` draws all resamples with one batched multinomial and
evaluates the metric through its vectorized kernel
(:meth:`~repro.metrics.base.Metric.compute_batch`); the retired per-resample
loop survives as :func:`bootstrap_metric_scalar`, the reference
implementation the benchmarks and parity tests compare against.  Both paths
consume the generator's bit stream identically, so they return byte-identical
summaries for the same seed.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro._rng import rng_from_seed
from repro.errors import ConfigurationError
from repro.metrics.base import Metric
from repro.metrics.batch import ConfusionBatch
from repro.metrics.confusion import ConfusionMatrix

__all__ = [
    "BootstrapSummary",
    "SeparationResult",
    "bootstrap_metric",
    "bootstrap_metric_scalar",
    "percentile_interval",
    "intervals_separated",
    "separation_detail",
    "separation_fraction",
]


@dataclass(frozen=True, slots=True)
class BootstrapSummary:
    """Distribution summary of a metric over bootstrap resamples."""

    metric_symbol: str
    point_estimate: float
    mean: float
    std: float
    ci_low: float
    ci_high: float
    n_resamples: int
    n_defined: int
    """Number of resamples for which the metric was defined."""

    @property
    def defined_fraction(self) -> float:
        """Fraction of resamples where the metric had a finite value."""
        return self.n_defined / self.n_resamples if self.n_resamples else float("nan")

    @property
    def width(self) -> float:
        """Width of the confidence interval."""
        return self.ci_high - self.ci_low


def percentile_interval(
    values: Sequence[float] | np.ndarray, confidence: float = 0.95
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval over ``values`` (nan-free).

    Accepts any sequence; an existing float array is used as-is (no copy), so
    the bootstrap fast path pays for conversion exactly once.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence={confidence} must be in (0, 1)")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ConfigurationError("cannot build an interval from no values")
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(array, [alpha, 1.0 - alpha])
    return float(low), float(high)


def _summarize(
    metric: Metric,
    cm: ConfusionMatrix,
    values: np.ndarray,
    n_resamples: int,
    confidence: float,
) -> BootstrapSummary:
    """Fold per-resample metric values into a summary (shared by both paths)."""
    finite = values[np.isfinite(values)]
    point_estimate = metric.value_or_nan(cm)
    if finite.size == 0:
        nan = float("nan")
        return BootstrapSummary(
            metric_symbol=metric.symbol,
            point_estimate=point_estimate,
            mean=nan,
            std=nan,
            ci_low=nan,
            ci_high=nan,
            n_resamples=n_resamples,
            n_defined=0,
        )
    ci_low, ci_high = percentile_interval(finite, confidence)
    return BootstrapSummary(
        metric_symbol=metric.symbol,
        point_estimate=point_estimate,
        mean=float(finite.mean()),
        std=float(finite.std(ddof=1)) if finite.size > 1 else 0.0,
        ci_low=ci_low,
        ci_high=ci_high,
        n_resamples=n_resamples,
        n_defined=int(finite.size),
    )


def bootstrap_metric(
    metric: Metric,
    cm: ConfusionMatrix,
    n_resamples: int = 200,
    confidence: float = 0.95,
    seed: int | np.random.Generator = 0,
) -> BootstrapSummary:
    """Bootstrap the sampling distribution of ``metric`` at ``cm``.

    Resamples the confusion matrix multinomially (same workload size, cells
    drawn from the observed proportions) and recomputes the metric.  Undefined
    resamples are dropped but counted, because frequent undefinedness is
    itself a finding (the R2 "definedness" property).

    All resamples are drawn with a single batched multinomial and evaluated
    through the metric's vectorized kernel; for the same ``seed`` the result
    is byte-identical to :func:`bootstrap_metric_scalar`.

    .. warning::
       Passing a ``Generator`` as ``seed`` makes the result depend on how far
       the generator has already advanced, i.e. on *call order*.  Experiments
       that must reproduce across execution backends (thread vs. process
       executors schedule work differently) should pass an explicit integer
       child seed — see :func:`repro._rng.derive_seed` — instead of sharing a
       stateful generator.
    """
    if n_resamples < 2:
        raise ConfigurationError(f"n_resamples={n_resamples} must be >= 2")
    rng = rng_from_seed(seed)
    batch = ConfusionBatch.resample(cm, n_resamples, rng)
    values = metric.compute_batch(batch)
    return _summarize(metric, cm, values, n_resamples, confidence)


def bootstrap_metric_scalar(
    metric: Metric,
    cm: ConfusionMatrix,
    n_resamples: int = 200,
    confidence: float = 0.95,
    seed: int | np.random.Generator = 0,
) -> BootstrapSummary:
    """Reference implementation of :func:`bootstrap_metric`: one resample and
    one scalar metric evaluation per Python-loop iteration.

    Kept (rather than deleted) so the equivalence of the vectorized path is a
    *tested* claim — see the parity tests and ``benchmarks/bench_engine.py``,
    which also uses this loop as the speedup baseline.
    """
    if n_resamples < 2:
        raise ConfigurationError(f"n_resamples={n_resamples} must be >= 2")
    rng = rng_from_seed(seed)
    values = np.array(
        [metric.value_or_nan(cm.resample(rng)) for _ in range(n_resamples)],
        dtype=float,
    )
    return _summarize(metric, cm, values, n_resamples, confidence)


def intervals_separated(a: BootstrapSummary, b: BootstrapSummary) -> bool:
    """Whether two bootstrap confidence intervals do not overlap.

    Non-overlap is the (conservative) separation criterion the
    discriminative-power experiment uses: a benchmark reader can tell the two
    tools apart on this metric without further statistics.
    """
    if any(
        math.isnan(value)
        for value in (a.ci_low, a.ci_high, b.ci_low, b.ci_high)
    ):
        return False
    return a.ci_low > b.ci_high or b.ci_low > a.ci_high


@dataclass(frozen=True, slots=True)
class SeparationResult:
    """Pairwise interval-separation census for one metric across tools.

    Pairs where either interval is NaN (the metric was undefined in every
    resample for that tool) are *counted and reported* instead of being
    silently folded into "not separated": an undefined interval says nothing
    about whether the tools differ, and hiding it understates both the
    metric's separation and its definedness problem.
    """

    n_tools: int
    n_separated: int
    n_defined_pairs: int
    n_undefined_pairs: int
    """Pairs skipped because at least one interval was NaN."""

    @property
    def n_pairs(self) -> int:
        """All tool pairs, defined or not."""
        return self.n_defined_pairs + self.n_undefined_pairs

    @property
    def fraction(self) -> float:
        """Separated fraction of *defined* pairs; NaN if no pair is defined."""
        if self.n_defined_pairs == 0:
            return float("nan")
        return self.n_separated / self.n_defined_pairs


def separation_detail(summaries: Sequence[BootstrapSummary]) -> SeparationResult:
    """Vectorized pairwise census over all ``n*(n-1)/2`` tool pairs."""
    n = len(summaries)
    if n < 2:
        raise ConfigurationError("separation needs at least two tools")
    lows = np.array([s.ci_low for s in summaries], dtype=float)
    highs = np.array([s.ci_high for s in summaries], dtype=float)
    defined = np.isfinite(lows) & np.isfinite(highs)
    i, j = np.triu_indices(n, k=1)
    pair_defined = defined[i] & defined[j]
    separated = (lows[i] > highs[j]) | (lows[j] > highs[i])
    return SeparationResult(
        n_tools=n,
        n_separated=int(np.count_nonzero(separated & pair_defined)),
        n_defined_pairs=int(np.count_nonzero(pair_defined)),
        n_undefined_pairs=int(np.count_nonzero(~pair_defined)),
    )


def separation_fraction(summaries: Sequence[BootstrapSummary]) -> float:
    """Fraction of tool pairs a metric separates (non-overlapping CIs).

    Computed over pairs whose intervals are both defined; NaN when no such
    pair exists.  Use :func:`separation_detail` to also see how many pairs
    were undefined.
    """
    return separation_detail(summaries).fraction

"""Bootstrap machinery for benchmark results.

A metric is only useful for tool selection if, under the sampling noise of a
finite workload, it still *separates* tools whose true quality differs — the
"discriminating" characteristic of a good metric.  This module provides the
resampling utilities behind experiment R7 (discriminative power) and the
repeatability property check in R2.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro._rng import rng_from_seed
from repro.errors import ConfigurationError
from repro.metrics.base import Metric
from repro.metrics.confusion import ConfusionMatrix

__all__ = [
    "BootstrapSummary",
    "bootstrap_metric",
    "percentile_interval",
    "intervals_separated",
    "separation_fraction",
]


@dataclass(frozen=True, slots=True)
class BootstrapSummary:
    """Distribution summary of a metric over bootstrap resamples."""

    metric_symbol: str
    point_estimate: float
    mean: float
    std: float
    ci_low: float
    ci_high: float
    n_resamples: int
    n_defined: int
    """Number of resamples for which the metric was defined."""

    @property
    def defined_fraction(self) -> float:
        """Fraction of resamples where the metric had a finite value."""
        return self.n_defined / self.n_resamples if self.n_resamples else float("nan")

    @property
    def width(self) -> float:
        """Width of the confidence interval."""
        return self.ci_high - self.ci_low


def percentile_interval(values: Sequence[float], confidence: float = 0.95) -> tuple[float, float]:
    """Percentile bootstrap confidence interval over ``values`` (nan-free)."""
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence={confidence} must be in (0, 1)")
    if len(values) == 0:
        raise ConfigurationError("cannot build an interval from no values")
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(np.asarray(values, dtype=float), [alpha, 1.0 - alpha])
    return float(low), float(high)


def bootstrap_metric(
    metric: Metric,
    cm: ConfusionMatrix,
    n_resamples: int = 200,
    confidence: float = 0.95,
    seed: int | np.random.Generator = 0,
) -> BootstrapSummary:
    """Bootstrap the sampling distribution of ``metric`` at ``cm``.

    Resamples the confusion matrix multinomially (same workload size, cells
    drawn from the observed proportions) and recomputes the metric.  Undefined
    resamples are dropped but counted, because frequent undefinedness is
    itself a finding (the R2 "definedness" property).
    """
    if n_resamples < 2:
        raise ConfigurationError(f"n_resamples={n_resamples} must be >= 2")
    rng = rng_from_seed(seed)
    values: list[float] = []
    for _ in range(n_resamples):
        value = metric.value_or_nan(cm.resample(rng))
        if math.isfinite(value):
            values.append(value)
    if not values:
        nan = float("nan")
        return BootstrapSummary(
            metric_symbol=metric.symbol,
            point_estimate=metric.value_or_nan(cm),
            mean=nan,
            std=nan,
            ci_low=nan,
            ci_high=nan,
            n_resamples=n_resamples,
            n_defined=0,
        )
    array = np.asarray(values, dtype=float)
    ci_low, ci_high = percentile_interval(values, confidence)
    return BootstrapSummary(
        metric_symbol=metric.symbol,
        point_estimate=metric.value_or_nan(cm),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if len(values) > 1 else 0.0,
        ci_low=ci_low,
        ci_high=ci_high,
        n_resamples=n_resamples,
        n_defined=len(values),
    )


def intervals_separated(a: BootstrapSummary, b: BootstrapSummary) -> bool:
    """Whether two bootstrap confidence intervals do not overlap.

    Non-overlap is the (conservative) separation criterion the
    discriminative-power experiment uses: a benchmark reader can tell the two
    tools apart on this metric without further statistics.
    """
    if any(
        math.isnan(value)
        for value in (a.ci_low, a.ci_high, b.ci_low, b.ci_high)
    ):
        return False
    return a.ci_low > b.ci_high or b.ci_low > a.ci_high


def separation_fraction(summaries: Sequence[BootstrapSummary]) -> float:
    """Fraction of tool pairs a metric separates (non-overlapping CIs)."""
    n = len(summaries)
    if n < 2:
        raise ConfigurationError("separation needs at least two tools")
    pairs = 0
    separated = 0
    for i in range(n):
        for j in range(i + 1, n):
            pairs += 1
            if intervals_separated(summaries[i], summaries[j]):
                separated += 1
    return separated / pairs

"""Paired statistical tests for tools benchmarked on the same workload.

Two tools in a campaign see the *same* analysis sites, so comparing them
with independent-sample machinery throws information away.  The right
primitive is the paired 2x2 table of per-site outcomes: sites only one tool
classified correctly are the discordant pairs, and McNemar's test asks
whether their split could be chance.  Wilson intervals cover the per-tool
proportions themselves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tools.base import DetectionReport
from repro.workload.ground_truth import GroundTruth

__all__ = [
    "PairedOutcomes",
    "paired_outcomes",
    "mcnemar_exact",
    "wilson_interval",
]


@dataclass(frozen=True, slots=True)
class PairedOutcomes:
    """Per-site agreement table of two tools against ground truth.

    ``both_correct``/``both_wrong`` are the concordant counts;
    ``only_first``/``only_second`` count sites exactly one tool classified
    correctly (the discordant pairs McNemar's test runs on).
    """

    first_tool: str
    second_tool: str
    both_correct: int
    only_first: int
    only_second: int
    both_wrong: int

    @property
    def n_sites(self) -> int:
        """Total paired observations."""
        return self.both_correct + self.only_first + self.only_second + self.both_wrong

    @property
    def discordant(self) -> int:
        """Number of sites where exactly one tool was right."""
        return self.only_first + self.only_second


def paired_outcomes(
    first: DetectionReport, second: DetectionReport, truth: GroundTruth
) -> PairedOutcomes:
    """Build the paired agreement table for two reports on one workload."""
    if first.workload_name != second.workload_name:
        raise ConfigurationError(
            f"reports come from different workloads: "
            f"{first.workload_name!r} vs {second.workload_name!r}"
        )
    flagged_first = first.flagged_sites
    flagged_second = second.flagged_sites
    both_correct = only_first = only_second = both_wrong = 0
    for site in truth.sites:
        vulnerable = site in truth.vulnerable
        first_correct = (site in flagged_first) == vulnerable
        second_correct = (site in flagged_second) == vulnerable
        if first_correct and second_correct:
            both_correct += 1
        elif first_correct:
            only_first += 1
        elif second_correct:
            only_second += 1
        else:
            both_wrong += 1
    return PairedOutcomes(
        first_tool=first.tool_name,
        second_tool=second.tool_name,
        both_correct=both_correct,
        only_first=only_first,
        only_second=only_second,
        both_wrong=both_wrong,
    )


def mcnemar_exact(outcomes: PairedOutcomes) -> float:
    """Exact McNemar test p-value (two-sided binomial on discordant pairs).

    Null hypothesis: a discordant site is equally likely to favour either
    tool.  With zero discordant pairs the tools are per-site
    indistinguishable and the p-value is 1.0 by convention.
    """
    n = outcomes.discordant
    if n == 0:
        return 1.0
    k = min(outcomes.only_first, outcomes.only_second)
    # Two-sided exact binomial: 2 * P[X <= k], capped at 1.
    cumulative = sum(math.comb(n, i) for i in range(k + 1)) * (0.5**n)
    p_value = 2.0 * cumulative
    # The symmetric middle term is counted twice when n is even and the
    # split is exactly even; capping handles it.
    return min(1.0, p_value)


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The interval benchmark reports should put around per-tool recall or
    precision: unlike the normal approximation it behaves at the extremes
    (recall 1.0 on 50 positives is not "exactly 1.0 forever").
    """
    if trials <= 0:
        raise ConfigurationError(f"trials={trials} must be positive")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes={successes} must be within [0, trials={trials}]"
        )
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence={confidence} must be in (0, 1)")
    z = _normal_quantile(0.5 + confidence / 2.0)
    p_hat = successes / trials
    denominator = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Absolute error below 1.2e-9 over the open unit interval — far tighter
    than any benchmarking use needs, and free of a scipy dependency.
    """
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"quantile argument {p} must be in (0, 1)")
    # Coefficients for the central and tail regions.
    a = (
        -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
        1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
        6.680131188771972e01, -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
        -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (
        ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
    ) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)

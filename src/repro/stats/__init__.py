"""Statistical apparatus: rankings, rank correlation, bootstrap."""

from repro.stats.bootstrap import (
    BootstrapSummary,
    SeparationResult,
    bootstrap_metric,
    bootstrap_metric_scalar,
    intervals_separated,
    percentile_interval,
    separation_detail,
    separation_fraction,
)
from repro.stats.significance import (
    PairedOutcomes,
    mcnemar_exact,
    paired_outcomes,
    wilson_interval,
)
from repro.stats.rank import (
    kendall_tau,
    kendalls_w,
    order_by_score,
    rank_of,
    rank_scores,
    spearman_rho,
    top_k_overlap,
)

__all__ = [
    "PairedOutcomes",
    "mcnemar_exact",
    "paired_outcomes",
    "wilson_interval",
    "BootstrapSummary",
    "SeparationResult",
    "bootstrap_metric",
    "bootstrap_metric_scalar",
    "intervals_separated",
    "percentile_interval",
    "separation_detail",
    "separation_fraction",
    "kendall_tau",
    "kendalls_w",
    "order_by_score",
    "rank_of",
    "rank_scores",
    "spearman_rho",
    "top_k_overlap",
]

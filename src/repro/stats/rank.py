"""Rankings and rank correlation.

The study compares *rankings of tools* induced by different metrics (R5) and
*rankings of metrics* produced by different selection methods (R11).  This
module implements the ranking machinery from first principles: fractional
ranks with tie handling, Kendall's tau-b, Spearman's rho, and top-k overlap.
The implementations are cross-checked against scipy in the test suite but do
not depend on it.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import ConfigurationError

__all__ = [
    "rank_scores",
    "order_by_score",
    "kendall_tau",
    "kendalls_w",
    "spearman_rho",
    "top_k_overlap",
    "rank_of",
]


def rank_scores(scores: Sequence[float], higher_is_better: bool = True) -> list[float]:
    """Return fractional (average) ranks, 1 = best.

    Ties receive the average of the positions they span, the standard
    "fractional ranking" used by rank-correlation statistics.  ``nan`` scores
    are ranked last (a metric that is undefined for a tool cannot rank it
    above any tool it is defined for).
    """
    n = len(scores)
    if n == 0:
        raise ConfigurationError("cannot rank an empty score list")

    def sort_key(index: int) -> tuple[int, float]:
        value = scores[index]
        if math.isnan(value):
            return (1, 0.0)  # nans sort after every real value
        return (0, -value if higher_is_better else value)

    order = sorted(range(n), key=sort_key)
    ranks = [0.0] * n
    i = 0
    while i < n:
        j = i
        while j + 1 < n and sort_key(order[j + 1]) == sort_key(order[i]):
            j += 1
        average_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average_rank
        i = j + 1
    return ranks


def order_by_score(
    names: Sequence[str], scores: Sequence[float], higher_is_better: bool = True
) -> list[str]:
    """Return ``names`` ordered best-first; ties broken by name for stability."""
    if len(names) != len(scores):
        raise ConfigurationError("names and scores must have equal length")
    ranks = rank_scores(scores, higher_is_better=higher_is_better)
    return [name for _, name in sorted(zip(ranks, names), key=lambda pair: (pair[0], pair[1]))]


def rank_of(name: str, names: Sequence[str], scores: Sequence[float],
            higher_is_better: bool = True) -> float:
    """Fractional rank of ``name`` within the scored set (1 = best)."""
    try:
        index = list(names).index(name)
    except ValueError:
        raise ConfigurationError(f"{name!r} not among {list(names)!r}") from None
    return rank_scores(scores, higher_is_better=higher_is_better)[index]


def kendall_tau(x: Sequence[float], y: Sequence[float]) -> float:
    """Kendall's tau-b between two score vectors (tie-corrected).

    Returns ``nan`` when either vector is constant (tau undefined).  O(n^2),
    which is ample for tool pools of benchmark size.
    """
    n = len(x)
    if n != len(y):
        raise ConfigurationError("x and y must have equal length")
    if n < 2:
        raise ConfigurationError("kendall_tau needs at least two observations")
    concordant = discordant = 0
    ties_x = ties_y = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = x[i] - x[j]
            dy = y[i] - y[j]
            if dx == 0 and dy == 0:
                continue
            if dx == 0:
                ties_x += 1
            elif dy == 0:
                ties_y += 1
            elif (dx > 0) == (dy > 0):
                concordant += 1
            else:
                discordant += 1
    n0 = n * (n - 1) / 2
    # Count total tied pairs per vector (including pairs tied in both).
    tied_both = n0 - concordant - discordant - ties_x - ties_y
    denom_x = n0 - (ties_x + tied_both)
    denom_y = n0 - (ties_y + tied_both)
    denominator = math.sqrt(denom_x * denom_y)
    if denominator == 0:
        return float("nan")
    return (concordant - discordant) / denominator


def spearman_rho(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman's rank correlation (Pearson correlation of fractional ranks)."""
    n = len(x)
    if n != len(y):
        raise ConfigurationError("x and y must have equal length")
    if n < 2:
        raise ConfigurationError("spearman_rho needs at least two observations")
    rx = rank_scores(x, higher_is_better=False)  # ascending ranks
    ry = rank_scores(y, higher_is_better=False)
    mean_rx = sum(rx) / n
    mean_ry = sum(ry) / n
    cov = sum((a - mean_rx) * (b - mean_ry) for a, b in zip(rx, ry))
    var_x = sum((a - mean_rx) ** 2 for a in rx)
    var_y = sum((b - mean_ry) ** 2 for b in ry)
    denominator = math.sqrt(var_x * var_y)
    if denominator == 0:
        return float("nan")
    return cov / denominator


def kendalls_w(score_vectors: Sequence[Sequence[float]]) -> float:
    """Kendall's coefficient of concordance W over raters' score vectors.

    Each vector holds one rater's scores for the same m items (higher =
    better); ranks are formed per rater with tie correction.  W = 1 means
    every rater ranks the items identically; W = 0 means no agreement beyond
    chance.  Used to quantify how cohesive an expert panel's metric
    preferences are before aggregation.
    """
    n_raters = len(score_vectors)
    if n_raters < 2:
        raise ConfigurationError("kendalls_w needs at least two raters")
    m = len(score_vectors[0])
    if m < 2:
        raise ConfigurationError("kendalls_w needs at least two items")
    if any(len(v) != m for v in score_vectors):
        raise ConfigurationError("all raters must score the same items")

    rank_matrix = [rank_scores(vector, higher_is_better=True) for vector in score_vectors]
    rank_sums = [sum(ranks[i] for ranks in rank_matrix) for i in range(m)]
    mean_rank_sum = sum(rank_sums) / m
    s = sum((r - mean_rank_sum) ** 2 for r in rank_sums)

    # Tie correction per rater: T = sum over tie groups of (t^3 - t).
    tie_correction = 0.0
    for ranks in rank_matrix:
        counts: dict[float, int] = {}
        for rank in ranks:
            counts[rank] = counts.get(rank, 0) + 1
        tie_correction += sum(t**3 - t for t in counts.values() if t > 1)

    denominator = n_raters**2 * (m**3 - m) - n_raters * tie_correction
    if denominator <= 0:
        # Every rater tied every item: agreement is undefined.
        return float("nan")
    return 12.0 * s / denominator


def top_k_overlap(first: Sequence[str], second: Sequence[str], k: int) -> float:
    """Fraction of overlap between the top-``k`` entries of two orderings.

    Used in R11 to quantify agreement between the analytical metric
    selection and the MCDA/expert ranking.
    """
    if k <= 0:
        raise ConfigurationError(f"k={k} must be positive")
    if k > min(len(first), len(second)):
        raise ConfigurationError(
            f"k={k} exceeds ordering lengths ({len(first)}, {len(second)})"
        )
    return len(set(first[:k]) & set(second[:k])) / k

"""Plain-text figures.

The paper's figures are curves (metric value vs. prevalence, rank stability
vs. perturbation).  We render them as ASCII charts: every benchmark run
reproduces not just the numbers but a visual with the same shape, without a
plotting dependency.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series on one ASCII grid.

    Each series gets a marker character; the legend maps markers back to
    names.  Non-finite points are skipped.  Axis ranges are the union of all
    series, padded slightly so extreme points stay visible.
    """
    if not series:
        raise ConfigurationError("no series to plot")
    if len(series) > len(_MARKERS):
        raise ConfigurationError(f"at most {len(_MARKERS)} series supported")
    if width < 16 or height < 4:
        raise ConfigurationError("chart must be at least 16x4 characters")

    points = [
        (x, y)
        for values in series.values()
        for x, y in values
        if math.isfinite(x) and math.isfinite(y)
    ]
    if not points:
        raise ConfigurationError("no finite points to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_min, x_max = x_min - 0.5, x_max + 0.5
    if y_max == y_min:
        y_min, y_max = y_min - 0.5, y_max + 0.5
    y_pad = 0.05 * (y_max - y_min)
    y_min, y_max = y_min - y_pad, y_max + y_pad

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, values) in zip(_MARKERS, series.items()):
        for x, y in values:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            col = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    gutter = 9
    lines: list[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:8.3g} "
        elif row_index == height - 1:
            label = f"{y_min:8.3g} "
        else:
            label = " " * gutter
        lines.append(label + "|" + "".join(row))
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_min:-8.3g}" + " " * (width - 14) + f"{x_max:8.3g}"
    lines.append(" " * gutter + " " + x_axis)
    lines.append(" " * gutter + f" {x_label}")
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series.keys())
    )
    lines.append(f"legend ({y_label}): {legend}")
    return "\n".join(lines)

"""Marker-delimited bench tables: one renderer, shared by bench and checker.

Several docs pages carry throughput tables regenerated from committed
``results/BENCH_*.json`` dumps between HTML-comment markers (for example
``<!-- shard-bench:rows:begin -->`` in ``docs/scaling.md``).  Before this
module the renderer lived inside the benchmark that wrote the table, so
nothing could *verify* a committed table without re-running the bench —
a hand-edited or forgotten table was invisible to CI.

This module is the single source of truth for those tables:

- :func:`bench_tables` registers every marker-delimited table — which doc
  carries it, which dump section feeds it, and how to render it;
- the benchmarks call :func:`refresh_doc` after updating their dump, so
  the docs can never drift from the numbers they cite;
- ``tools/check_docs.py`` re-renders each registered table from the
  committed dump and reports a stale table as a docs problem, which
  ``tests/test_docs.py`` and the docs CI job enforce.

Renderers are pure functions of the dump payload, so "fresh" is a string
equality check — no tolerance windows, no reformatting heuristics.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "BenchTable",
    "bench_tables",
    "refresh_doc",
    "render_engine_transport",
    "render_serve_fairness",
    "render_serve_latency",
    "render_shard_generation",
    "render_shard_throughput",
    "table_in_doc",
]


def render_shard_throughput(payload: dict) -> str:
    """The ``docs/scaling.md`` throughput table from a shard-bench dump."""
    lines = [
        "| units | shard size | wall (s) | units/s | peak RSS (MB) |",
        "|---|---|---|---|---|",
    ]
    for row in payload["throughput"]["rows"]:
        lines.append(
            f"| {row['scale']:,} | {row['shard_size']:,} "
            f"| {row['wall_seconds']:.1f} | {row['units_per_second']:,.0f} "
            f"| {row['peak_rss_mb']:.0f} |"
        )
    return "\n".join(lines)


def render_shard_generation(payload: dict) -> str:
    """The per-ecosystem scalar-vs-columnar generation table."""
    lines = [
        "| ecosystem | scalar units/s | columnar units/s | speedup |",
        "|---|---|---|---|",
    ]
    for row in payload["generation"]["rows"]:
        lines.append(
            f"| {row['ecosystem']} "
            f"| {row['scalar_units_per_second']:,.0f} "
            f"| {row['batch_units_per_second']:,.0f} "
            f"| {row['speedup']:.1f}x |"
        )
    return "\n".join(lines)


def render_engine_transport(payload: dict) -> str:
    """The executor × transport wall-time table from the engine dump."""
    section = payload["transport"]
    thread = section["thread_seconds"]
    rows = [
        ("thread", "in-memory", thread),
        ("process", "pickle", section["process_pickle_seconds"]),
        ("process", "shm ring", section["process_shm_seconds"]),
    ]
    lines = [
        "| executor | transport | wall (s) | vs thread |",
        "|---|---|---|---|",
    ]
    for executor, transport, seconds in rows:
        lines.append(
            f"| {executor} | {transport} | {seconds:.2f} "
            f"| {thread / seconds:.2f}x |"
        )
    return "\n".join(lines)


def render_serve_latency(payload: dict) -> str:
    """The ``docs/serve.md`` per-phase service latency table."""
    lines = [
        "| phase | requests | p50 (ms) | p99 (ms) | req/s |",
        "|---|---|---|---|---|",
    ]
    for row in payload["latency"]["rows"]:
        lines.append(
            f"| {row['phase']} | {row['requests']:,} "
            f"| {row['p50_ms']:.2f} | {row['p99_ms']:.2f} "
            f"| {row['rps']:,.0f} |"
        )
    return "\n".join(lines)


def render_serve_fairness(payload: dict) -> str:
    """Per-tenant completion share under the abusive-tenant trace."""
    section = payload["fairness"]
    lines = [
        "| tenant | weight | submitted share | served share (fair window) |",
        "|---|---|---|---|",
    ]
    for tenant, row in sorted(section["tenants"].items()):
        marker = " (abusive)" if tenant == section["abusive"] else ""
        lines.append(
            f"| {tenant}{marker} | {row['weight']:.1f} "
            f"| {row['submitted_share']:.0%} | {row['served_share']:.0%} |"
        )
    lines.append("")
    lines.append(
        f"Abusive tenant bounded to its weight share: "
        f"**{'yes' if section['bounded'] else 'NO'}**."
    )
    return "\n".join(lines)


@dataclass(frozen=True)
class BenchTable:
    """One marker-delimited table: where it lives and how to rebuild it."""

    key: str
    """Registry id (stable; used in checker messages)."""
    doc: str
    """Repo-relative path of the markdown page carrying the table."""
    begin: str
    """Opening marker line (an HTML comment, written verbatim)."""
    end: str
    """Closing marker line."""
    results: str
    """Repo-relative path of the ``BENCH_*.json`` dump feeding the table."""
    section: str
    """Top-level dump section the renderer reads."""
    render: Callable[[dict], str]
    """Pure function from the full dump payload to the table's markdown."""


def bench_tables() -> tuple[BenchTable, ...]:
    """Every registered bench table (the checker sweeps exactly these)."""
    return (
        BenchTable(
            key="shard-throughput",
            doc="docs/scaling.md",
            begin="<!-- shard-bench:rows:begin -->",
            end="<!-- shard-bench:rows:end -->",
            results="results/BENCH_shard.json",
            section="throughput",
            render=render_shard_throughput,
        ),
        BenchTable(
            key="shard-generation",
            doc="docs/scaling.md",
            begin="<!-- shard-bench:generation:begin -->",
            end="<!-- shard-bench:generation:end -->",
            results="results/BENCH_shard.json",
            section="generation",
            render=render_shard_generation,
        ),
        BenchTable(
            key="engine-transport",
            doc="docs/scaling.md",
            begin="<!-- engine-bench:transport:begin -->",
            end="<!-- engine-bench:transport:end -->",
            results="results/BENCH_engine.json",
            section="transport",
            render=render_engine_transport,
        ),
        BenchTable(
            key="serve-latency",
            doc="docs/serve.md",
            begin="<!-- serve-bench:latency:begin -->",
            end="<!-- serve-bench:latency:end -->",
            results="results/BENCH_serve.json",
            section="latency",
            render=render_serve_latency,
        ),
        BenchTable(
            key="serve-fairness",
            doc="docs/serve.md",
            begin="<!-- serve-bench:fairness:begin -->",
            end="<!-- serve-bench:fairness:end -->",
            results="results/BENCH_serve.json",
            section="fairness",
            render=render_serve_fairness,
        ),
    )


def table_in_doc(table: BenchTable, text: str) -> str | None:
    """The doc's current table body between the markers, or ``None``.

    ``None`` distinguishes "the page does not carry the markers at all"
    (a registration/doc mismatch) from an empty-but-present table.
    """
    if table.begin not in text or table.end not in text:
        return None
    body = text.split(table.begin, 1)[1].split(table.end, 1)[0]
    return body.strip("\n")


def refresh_doc(table: BenchTable, root: Path) -> bool:
    """Rewrite ``table`` in its doc from the committed dump.

    Returns whether the doc changed.  A missing dump, missing section,
    missing doc or missing markers is a quiet no-op — the benchmarks call
    this opportunistically and the *checker* is the component that turns
    those states into errors.
    """
    results = root / table.results
    doc = root / table.doc
    if not results.exists() or not doc.exists():
        return False
    try:
        payload = json.loads(results.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return False
    if table.section not in payload:
        return False
    text = doc.read_text(encoding="utf-8")
    current = table_in_doc(table, text)
    if current is None:
        return False
    rendered = table.render(payload)
    if current == rendered:
        return False
    head, rest = text.split(table.begin, 1)
    _, tail = rest.split(table.end, 1)
    doc.write_text(
        head + table.begin + "\n" + rendered + "\n" + table.end + tail,
        encoding="utf-8",
    )
    return True

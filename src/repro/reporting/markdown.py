"""GitHub-flavoured markdown rendering for experiment output.

The plain-text tables in :mod:`repro.reporting.tables` are right for
terminals and archived ``results/*.txt`` files; this module renders the same
rows as markdown so experiment reports can land directly in pull requests,
wikis and issue trackers.  ASCII figures are wrapped in fenced code blocks —
monospace art survives markdown only inside a fence.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigurationError
from repro.reporting.tables import format_cell

__all__ = ["format_markdown_table", "experiment_to_markdown"]


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = ".3f",
) -> str:
    """Render a GitHub-flavoured markdown table.

    Numeric columns get right-alignment markers; cells are escaped enough
    for the common cases (pipes).
    """
    if not headers:
        raise ConfigurationError("table needs at least one column")
    for index, row in enumerate(rows):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )

    def escape(cell: str) -> str:
        return cell.replace("|", "\\|")

    numeric = [
        bool(rows)
        and all(
            isinstance(row[col], (int, float)) and not isinstance(row[col], bool)
            for row in rows
        )
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(escape(str(h)) for h in headers) + " |")
    lines.append(
        "|" + "|".join("---:" if numeric[col] else "---" for col in range(len(headers))) + "|"
    )
    for row in rows:
        cells = [escape(format_cell(cell, float_format)) for cell in row]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def experiment_to_markdown(experiment_id: str, title: str, sections: dict[str, str]) -> str:
    """Wrap an experiment's rendered text sections as a markdown document.

    Sections are emitted in order under ``##`` headings; because the
    sections are preformatted text (aligned tables, ASCII charts), each body
    is fenced.  This keeps the markdown faithful to the canonical rendering
    rather than re-deriving tables (which would let the two formats drift).
    """
    lines = [f"# {experiment_id}: {title}", ""]
    for name, body in sections.items():
        heading = name.replace("_", " ")
        lines.append(f"## {heading}")
        lines.append("")
        lines.append("```text")
        lines.append(body)
        lines.append("```")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"

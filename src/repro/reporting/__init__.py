"""Plain-text tables, ASCII figures, markdown and bench-table rendering."""

from repro.reporting.benchtables import BenchTable, bench_tables, refresh_doc
from repro.reporting.figures import ascii_chart
from repro.reporting.markdown import experiment_to_markdown, format_markdown_table
from repro.reporting.tables import format_cell, format_table

__all__ = [
    "BenchTable",
    "ascii_chart",
    "bench_tables",
    "experiment_to_markdown",
    "format_markdown_table",
    "format_cell",
    "format_table",
    "refresh_doc",
]

"""Plain-text tables, ASCII figures and markdown rendering."""

from repro.reporting.figures import ascii_chart
from repro.reporting.markdown import experiment_to_markdown, format_markdown_table
from repro.reporting.tables import format_cell, format_table

__all__ = [
    "ascii_chart",
    "experiment_to_markdown",
    "format_markdown_table",
    "format_cell",
    "format_table",
]

"""Plain-text table rendering.

Every experiment regenerates a paper table; this module renders them as
aligned monospace text so benches and examples can print rows directly
comparable to the paper's.  No external dependencies, no color, no wrapping
magic — benchmark output should survive a copy-paste into a report.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import ConfigurationError

__all__ = ["format_cell", "format_table", "format_grid"]


def format_cell(value: object, float_format: str = ".3f") -> str:
    """Render one cell: floats via ``float_format`` (nan as '-'), rest via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = ".3f",
) -> str:
    """Render an aligned text table.

    Numeric cells are right-aligned, text cells left-aligned; the first row
    of dashes separates the header.  Raises when a row's width disagrees
    with the header, because a misaligned benchmark table is worse than a
    crash.
    """
    if not headers:
        raise ConfigurationError("table needs at least one column")
    for index, row in enumerate(rows):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )

    rendered_rows = [
        [format_cell(cell, float_format) for cell in row] for row in rows
    ]
    numeric = [
        all(
            isinstance(row[col], (int, float)) and not isinstance(row[col], bool)
            for row in rows
        )
        if rows
        else False
        for col in range(len(headers))
    ]
    widths = [
        max(len(str(headers[col])), *(len(r[col]) for r in rendered_rows))
        if rendered_rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]

    def render_line(cells: Sequence[str], is_header: bool = False) -> str:
        parts = []
        for col, cell in enumerate(cells):
            if numeric[col] and not is_header:
                parts.append(cell.rjust(widths[col]))
            else:
                parts.append(cell.ljust(widths[col]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line([str(h) for h in headers], is_header=True))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_line(r) for r in rendered_rows)
    return "\n".join(lines)


def format_grid(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cells: Sequence[Sequence[object]],
    corner: str = "",
    title: str | None = None,
    float_format: str = ".3f",
) -> str:
    """Render a labeled rows x columns grid as an aligned text table.

    A convenience over :func:`format_table` for cross-tabulations (scenario
    x ecosystem, metric x regime...): ``cells[i][j]`` is the value at
    ``(row_labels[i], col_labels[j])``, and ``corner`` names the row axis
    in the header.  Shape mismatches raise, like :func:`format_table`.
    """
    if len(cells) != len(row_labels):
        raise ConfigurationError(
            f"grid has {len(cells)} cell rows, expected {len(row_labels)}"
        )
    rows = [
        [label, *row] for label, row in zip(row_labels, cells)
    ]
    return format_table(
        headers=[corner, *col_labels],
        rows=rows,
        title=title,
        float_format=float_format,
    )

"""Qualitative good-metric characteristics.

Two of the characteristics the paper weighs cannot be computed from
confusion matrices: how easily practitioners *understand* a metric, and how
widely the community already *accepts* it.  We keep these as curated
constants with documented rationale — pretending to compute them would be
less honest than stating them.  The curation mirrors the consensus of the
benchmarking surveys the paper builds on: plain ratios of observable events
are easy to grasp; chance-corrected correlations are not; popularity follows
what published tool evaluations actually report.
"""

from __future__ import annotations

from repro.metrics.base import Metric
from repro.properties.base import AssessmentContext, MetricProperty, PropertyAssessment

__all__ = ["Understandability", "Acceptance", "UNDERSTANDABILITY_SCORES"]


#: Curated understandability per metric symbol (1.0 = immediately intuitive
#: to a practitioner reading a benchmark report, 0.1 = needs a statistics
#: refresher).  Symbols absent from the table get the conservative default.
UNDERSTANDABILITY_SCORES: dict[str, tuple[float, str]] = {
    "REC": (1.0, "fraction of vulnerabilities found — directly actionable"),
    "PRE": (1.0, "fraction of reports that are real — directly actionable"),
    "FPR": (0.9, "false-alarm frequency over safe sites"),
    "FNR": (0.9, "miss frequency over vulnerable sites"),
    "SPC": (0.85, "complement of the false-alarm frequency"),
    "ACC": (0.9, "fraction correct — intuitive, if misleading"),
    "ERR": (0.85, "fraction wrong"),
    "FDR": (0.8, "fraction of reports that are noise"),
    "FOR": (0.6, "needs the notion of 'silent verdicts' to parse"),
    "NPV": (0.6, "trustworthiness of silence — rarely articulated"),
    "F1": (0.7, "harmonic mean needs explanation but is widely taught"),
    "F2": (0.55, "the beta weighting is one step beyond F1"),
    "F0.5": (0.55, "the beta weighting is one step beyond F1"),
    "BAC": (0.7, "average of two intuitive rates"),
    "GM": (0.5, "geometric mean of rates — less intuitive than BAC"),
    "FM": (0.45, "geometric mean of precision and recall"),
    "JAC": (0.6, "overlap of reports and vulnerabilities"),
    "MCC": (0.35, "a correlation coefficient over the 2x2 table"),
    "KAP": (0.35, "chance-expected agreement needs statistical background"),
    "INF": (0.45, "TPR + TNR - 1 is simple but unfamiliar"),
    "MRK": (0.3, "dual of informedness; unfamiliar"),
    "DOR": (0.25, "odds ratios routinely misread"),
    "LR+": (0.3, "likelihood ratios are epidemiology vocabulary"),
    "LR-": (0.3, "likelihood ratios are epidemiology vocabulary"),
    "PT": (0.15, "operating-curve derivation; rarely seen"),
    "LFT": (0.4, "ratio to blind guessing; familiar from data mining"),
    "EC": (0.65, "cost per site — intuitive once costs are agreed"),
    "NEC": (0.4, "cost relative to trivial policies"),
}

_DEFAULT_UNDERSTANDABILITY = (0.3, "unfamiliar metric; conservative default")


class Understandability(MetricProperty):
    """How easily a benchmark reader interprets the metric (curated)."""

    name = "understandable"
    description = "interpretable by practitioners without statistical training"

    def assess(self, metric: Metric, context: AssessmentContext) -> PropertyAssessment:
        """Score ``metric`` on this property (see the class docstring)."""
        score, rationale = UNDERSTANDABILITY_SCORES.get(
            metric.symbol, _DEFAULT_UNDERSTANDABILITY
        )
        return PropertyAssessment(
            property_name=self.name,
            metric_symbol=metric.symbol,
            score=score,
            rationale=rationale,
        )


class Acceptance(MetricProperty):
    """How established the metric is in vulnerability-detection benchmarking.

    Read directly from the curated ``popularity`` field of the metric's
    catalog entry.  Acceptance eases cross-study comparison, which is why the
    paper weighs it at all — and why its *low* weight in several scenarios is
    a finding (the adequate metric is sometimes a seldom-used one).
    """

    name = "accepted"
    description = "established in the benchmarking literature"

    def assess(self, metric: Metric, context: AssessmentContext) -> PropertyAssessment:
        """Score ``metric`` on this property (see the class docstring)."""
        popularity = metric.info.popularity
        return PropertyAssessment(
            property_name=self.name,
            metric_symbol=metric.symbol,
            score=popularity,
            rationale=f"curated literature popularity {popularity:.2f}",
        )

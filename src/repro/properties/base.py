"""Framework for assessing metrics against good-metric characteristics.

The paper's step 2 analyzes each gathered metric "according to the
characteristics of a good metric for the vulnerability detection domain".
We make that analysis *executable*: each characteristic is a
:class:`MetricProperty` whose :meth:`~MetricProperty.assess` scores a metric
in [0, 1] against evidence computed on a shared grid of synthetic benchmark
outcomes (the :class:`AssessmentContext`).  Qualitative characteristics
(understandability, community acceptance) are curated constants with
documented rationale rather than pretend-computations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro._rng import derive_seed, spawn
from repro.errors import ConfigurationError
from repro.metrics.base import Metric
from repro.metrics.confusion import ConfusionMatrix

__all__ = ["PropertyAssessment", "MetricProperty", "AssessmentContext", "OperatingPoint"]


@dataclass(frozen=True, slots=True)
class OperatingPoint:
    """A tool's intrinsic quality: its (TPR, FPR) pair."""

    tpr: float
    fpr: float

    def matrix(self, prevalence: float, total: float) -> ConfusionMatrix:
        """Expected confusion matrix at a given workload mix."""
        positives = prevalence * total
        return ConfusionMatrix.from_rates(self.tpr, self.fpr, positives, total - positives)


@dataclass(frozen=True, slots=True)
class PropertyAssessment:
    """Outcome of assessing one metric against one property."""

    property_name: str
    metric_symbol: str
    score: float
    rationale: str
    evidence: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ConfigurationError(
                f"assessment score {self.score} for {self.metric_symbol}/"
                f"{self.property_name} must be in [0, 1]"
            )


class MetricProperty(ABC):
    """One characteristic of a good metric, scored programmatically."""

    name: str
    description: str

    @abstractmethod
    def assess(self, metric: Metric, context: "AssessmentContext") -> PropertyAssessment:
        """Score ``metric`` in [0, 1] against this property."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MetricProperty {self.name}>"


@dataclass(frozen=True)
class AssessmentContext:
    """Shared evidence grid for the property checks.

    ``operating_points`` sample the space of plausible tools;
    ``prevalences`` the space of plausible workload mixes; ``total_sites``
    the workload size used to materialize matrices.  All programmatic checks
    draw from this grid, so scores for different metrics are comparable.
    """

    operating_points: tuple[OperatingPoint, ...]
    prevalences: tuple[float, ...]
    total_sites: float
    seed: int
    n_resamples: int

    @classmethod
    def default(cls, seed: int = 0, n_resamples: int = 120) -> "AssessmentContext":
        """The reference grid used by experiment R2.

        Operating points cover useful tools (TPR > FPR), useless tools
        (TPR == FPR) and perverse tools (TPR < FPR), because several
        characteristics hinge on how a metric treats the last two groups.
        """
        rates = (0.05, 0.2, 0.4, 0.6, 0.8, 0.95)
        points = [
            OperatingPoint(tpr, fpr)
            for tpr in rates
            for fpr in rates
        ]
        return cls(
            operating_points=tuple(points),
            prevalences=(0.01, 0.05, 0.1, 0.2, 0.35, 0.5),
            total_sites=1000.0,
            seed=seed,
            n_resamples=n_resamples,
        )

    def matrices(self) -> list[ConfusionMatrix]:
        """All grid matrices (every operating point at every prevalence)."""
        return [
            point.matrix(prevalence, self.total_sites)
            for point in self.operating_points
            for prevalence in self.prevalences
        ]

    def degenerate_matrices(self) -> list[ConfusionMatrix]:
        """Edge-case outcomes a robust benchmark metric must cope with.

        Silent tools, flag-everything tools, perfect tools, perfectly wrong
        tools, and single-class workloads.  Matrices here routinely put a
        zero in some marginal, which is exactly what trips up ratio metrics.
        """
        n = self.total_sites
        return [
            ConfusionMatrix(tp=0, fp=0, fn=0.2 * n, tn=0.8 * n),  # silent tool
            ConfusionMatrix(tp=0.2 * n, fp=0.8 * n, fn=0, tn=0),  # flags everything
            ConfusionMatrix(tp=0.2 * n, fp=0, fn=0, tn=0.8 * n),  # perfect tool
            ConfusionMatrix(tp=0, fp=0.8 * n, fn=0.2 * n, tn=0),  # perfectly wrong
            ConfusionMatrix(tp=0.5 * n, fp=0, fn=0.5 * n, tn=0),  # all-vulnerable workload
            ConfusionMatrix(tp=0, fp=0.5 * n, fn=0, tn=0.5 * n),  # all-safe workload
            ConfusionMatrix(tp=1, fp=0, fn=0, tn=n - 1),  # one needle, found
            ConfusionMatrix(tp=0, fp=1, fn=1, tn=n - 2),  # one needle, missed + one alarm
        ]

    def rng(self, key: str) -> np.random.Generator:
        """Deterministic substream for a named check."""
        return spawn(self.seed, f"properties:{key}")

    def stream_seed(self, key: str) -> int:
        """Integer seed of the named substream (:meth:`rng` without state).

        ``default_rng(stream_seed(key))`` draws the same stream as
        ``rng(key)``; checks that hand the seed to other code (for example
        :func:`repro.stats.bootstrap.bootstrap_metric`) should pass this
        integer so the callee's draws cannot depend on call order.
        """
        return derive_seed(self.seed, f"properties:{key}")

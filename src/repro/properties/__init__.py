"""Characteristics of a good metric, made executable."""

from repro.properties.base import (
    AssessmentContext,
    MetricProperty,
    OperatingPoint,
    PropertyAssessment,
)
from repro.properties.checks import (
    Boundedness,
    ChanceCorrection,
    Definedness,
    Discriminance,
    PrevalenceInvariance,
    Repeatability,
    RewardsDetection,
    RewardsSilence,
)
from repro.properties.matrix import (
    PropertiesMatrix,
    build_properties_matrix,
    default_properties,
)
from repro.properties.qualitative import Acceptance, Understandability

__all__ = [
    "AssessmentContext",
    "MetricProperty",
    "OperatingPoint",
    "PropertyAssessment",
    "Boundedness",
    "ChanceCorrection",
    "Definedness",
    "Discriminance",
    "PrevalenceInvariance",
    "Repeatability",
    "RewardsDetection",
    "RewardsSilence",
    "PropertiesMatrix",
    "build_properties_matrix",
    "default_properties",
    "Acceptance",
    "Understandability",
]

"""Programmatic good-metric property checks.

Each check scores a metric in [0, 1] from evidence computed on the shared
:class:`~repro.properties.base.AssessmentContext` grid.  The scoring formulas
are simple and documented inline; their purpose is to *order* metrics by how
well they exhibit a characteristic, not to assign absolute grades.
"""

from __future__ import annotations

import math

import numpy as np

from repro.metrics.base import Metric
from repro.metrics.confusion import ConfusionMatrix
from repro.properties.base import (
    AssessmentContext,
    MetricProperty,
    OperatingPoint,
    PropertyAssessment,
)
from repro.stats.bootstrap import bootstrap_metric

__all__ = [
    "Boundedness",
    "Definedness",
    "PrevalenceInvariance",
    "RewardsDetection",
    "RewardsSilence",
    "ChanceCorrection",
    "Discriminance",
    "Repeatability",
]


def _scale_for(metric: Metric, context: AssessmentContext) -> float:
    """A normalization scale for dispersion measures.

    The declared range when finite; otherwise the 90th percentile of the
    metric's absolute values over the grid (robust against the explosions of
    unbounded metrics such as DOR).
    """
    info = metric.info
    if math.isfinite(info.lower_bound) and math.isfinite(info.upper_bound):
        return info.upper_bound - info.lower_bound
    values = [
        abs(v)
        for cm in context.matrices()
        if math.isfinite(v := metric.value_or_nan(cm))
    ]
    if not values:
        return 1.0
    return max(float(np.quantile(values, 0.9)), 1e-9)


class Boundedness(MetricProperty):
    """Values live in a fixed, finite, known interval.

    A benchmark reader must be able to tell whether 0.73 is good without
    knowing the workload; unbounded metrics (DOR, likelihood ratios) fail
    outright, and any sampled violation of the declared range scores zero.
    """

    name = "bounded"
    description = "values confined to a known finite interval"

    def assess(self, metric: Metric, context: AssessmentContext) -> PropertyAssessment:
        """Score ``metric`` on this property (see the class docstring)."""
        info = metric.info
        if not (math.isfinite(info.lower_bound) and math.isfinite(info.upper_bound)):
            return PropertyAssessment(
                property_name=self.name,
                metric_symbol=metric.symbol,
                score=0.0,
                rationale="declared range is unbounded",
            )
        tolerance = 1e-9
        violations = 0
        total = 0
        for cm in context.matrices() + context.degenerate_matrices():
            value = metric.value_or_nan(cm)
            if not math.isfinite(value):
                continue
            total += 1
            if value < info.lower_bound - tolerance or value > info.upper_bound + tolerance:
                violations += 1
        score = 1.0 if violations == 0 else 0.0
        return PropertyAssessment(
            property_name=self.name,
            metric_symbol=metric.symbol,
            score=score,
            rationale=(
                "all sampled values inside the declared range"
                if violations == 0
                else f"{violations}/{total} sampled values escaped the declared range"
            ),
            evidence={"violations": float(violations), "sampled": float(total)},
        )


class Definedness(MetricProperty):
    """Has a value for (nearly) every benchmark outcome.

    Silent tools, flag-everything tools and skewed workloads are routine in
    vulnerability detection campaigns; a metric that is undefined there
    cannot anchor a benchmark report.  Degenerate outcomes are weighted as
    heavily as the whole regular grid because they are where the problem
    actually bites.
    """

    name = "defined"
    description = "defined for degenerate benchmark outcomes"

    def assess(self, metric: Metric, context: AssessmentContext) -> PropertyAssessment:
        """Score ``metric`` on this property (see the class docstring)."""
        regular = context.matrices()
        degenerate = context.degenerate_matrices()
        regular_defined = sum(1 for cm in regular if metric.is_defined(cm)) / len(regular)
        degenerate_defined = sum(1 for cm in degenerate if metric.is_defined(cm)) / len(
            degenerate
        )
        score = 0.5 * regular_defined + 0.5 * degenerate_defined
        return PropertyAssessment(
            property_name=self.name,
            metric_symbol=metric.symbol,
            score=score,
            rationale=(
                f"defined on {regular_defined:.0%} of the grid and "
                f"{degenerate_defined:.0%} of degenerate outcomes"
            ),
            evidence={
                "regular_defined": regular_defined,
                "degenerate_defined": degenerate_defined,
            },
        )


class PrevalenceInvariance(MetricProperty):
    """Measures the tool, not the workload mix.

    A tool's intrinsic quality is its (TPR, FPR) operating point; when only
    the workload's vulnerability rate changes, a faithful tool metric should
    not move.  Score is one minus the mean prevalence-induced swing,
    normalized by the metric's scale.
    """

    name = "prevalence-invariant"
    description = "insensitive to the workload's vulnerability rate"

    def assess(self, metric: Metric, context: AssessmentContext) -> PropertyAssessment:
        """Score ``metric`` on this property (see the class docstring)."""
        scale = _scale_for(metric, context)
        swings = []
        for point in context.operating_points:
            values = [
                v
                for prevalence in context.prevalences
                if math.isfinite(
                    v := metric.value_or_nan(point.matrix(prevalence, context.total_sites))
                )
            ]
            if len(values) >= 2:
                swings.append((max(values) - min(values)) / scale)
        mean_swing = float(np.mean(swings)) if swings else 1.0
        score = max(0.0, 1.0 - mean_swing)
        return PropertyAssessment(
            property_name=self.name,
            metric_symbol=metric.symbol,
            score=score,
            rationale=f"mean prevalence-induced swing is {mean_swing:.2f} of the metric scale",
            evidence={"mean_swing": mean_swing, "scale": scale},
        )


class _ResponsivenessShare(MetricProperty):
    """Shared machinery for the two orientation properties.

    On campaign-realistic matrices, flip one site from miss to detection
    (FN -> TP) and, separately, one site from false alarm to silence
    (FP -> TN), and measure the metric's mean goodness response to each.
    The *share* of total responsiveness on one side is that side's score:
    recall puts 100% of its responsiveness on the detection side, specificity
    100% on the silence side, F0.5 leans ~2:1 toward exactness, and so on.

    Negative mean response to an improving move (a pathological metric)
    clamps that side to zero before the shares are formed.
    """

    #: Which share this property reports: "detection" or "silence".
    side: str

    def _mean_responses(
        self, metric: Metric, context: AssessmentContext
    ) -> tuple[float, float]:
        """Mean goodness delta for (FN->TP, FP->TN) moves, clamped at 0."""
        rng = context.rng("responsiveness")
        detection_deltas: list[float] = []
        silence_deltas: list[float] = []
        total = 400.0
        for _ in range(250):
            prevalence = float(rng.uniform(0.05, 0.3))
            tpr = float(rng.uniform(0.2, 0.95))
            fpr = float(rng.uniform(0.005, 0.4))
            positives = prevalence * total
            cm = _integerize(
                ConfusionMatrix.from_rates(tpr, fpr, positives, total - positives)
            )
            before = metric.goodness(cm)
            if not math.isfinite(before):
                continue
            if cm.fn >= 1:
                after = metric.goodness(
                    ConfusionMatrix(cm.tp + 1, cm.fp, cm.fn - 1, cm.tn)
                )
                if math.isfinite(after):
                    detection_deltas.append(after - before)
            if cm.fp >= 1:
                after = metric.goodness(
                    ConfusionMatrix(cm.tp, cm.fp - 1, cm.fn, cm.tn + 1)
                )
                if math.isfinite(after):
                    silence_deltas.append(after - before)
        detection = max(0.0, float(np.mean(detection_deltas))) if detection_deltas else 0.0
        silence = max(0.0, float(np.mean(silence_deltas))) if silence_deltas else 0.0
        return detection, silence

    def assess(self, metric: Metric, context: AssessmentContext) -> PropertyAssessment:
        """Score ``metric`` on this property (see the class docstring)."""
        detection, silence = self._mean_responses(metric, context)
        total = detection + silence
        if total == 0:
            return PropertyAssessment(
                property_name=self.name,
                metric_symbol=metric.symbol,
                score=0.0,
                rationale="metric does not respond to either improving move",
            )
        share = detection / total if self.side == "detection" else silence / total
        return PropertyAssessment(
            property_name=self.name,
            metric_symbol=metric.symbol,
            score=share,
            rationale=(
                f"{share:.0%} of the metric's error-responsiveness is on the "
                f"{self.side} side"
            ),
            evidence={"detection_response": detection, "silence_response": silence},
        )


class RewardsDetection(_ResponsivenessShare):
    """How much of the metric's responsiveness rewards finding vulnerabilities.

    The property a "critical system" stakeholder weighs highest: a metric
    adequate there must move, hard, when a miss becomes a detection.
    """

    name = "rewards detection"
    description = "share of responsiveness on the miss/detection side"
    side = "detection"


class RewardsSilence(_ResponsivenessShare):
    """How much of the metric's responsiveness rewards suppressing alarms.

    The dual property, weighed highest by triage-bound teams drowning in
    false positives.
    """

    name = "rewards silence"
    description = "share of responsiveness on the false-alarm side"
    side = "silence"


class ChanceCorrection(MetricProperty):
    """Uninformed tools all look alike.

    A tool that flags sites at random (TPR == FPR) conveys no information,
    whatever its flagging rate.  A chance-corrected metric gives all such
    tools the same value; metrics that reward aggressive or silent guessing
    (accuracy at low prevalence being the notorious case) score low.
    """

    name = "chance-corrected"
    description = "scores all uninformed tools identically"

    def assess(self, metric: Metric, context: AssessmentContext) -> PropertyAssessment:
        """Score ``metric`` on this property (see the class docstring)."""
        scale = _scale_for(metric, context)
        values = []
        for rate in (0.05, 0.2, 0.4, 0.6, 0.8, 0.95):
            point = OperatingPoint(tpr=rate, fpr=rate)
            for prevalence in context.prevalences:
                value = metric.value_or_nan(point.matrix(prevalence, context.total_sites))
                if math.isfinite(value):
                    values.append(value)
        if len(values) < 2:
            return PropertyAssessment(
                property_name=self.name,
                metric_symbol=metric.symbol,
                score=0.0,
                rationale="metric undefined for uninformed tools",
            )
        swing = (max(values) - min(values)) / scale
        score = max(0.0, 1.0 - swing)
        return PropertyAssessment(
            property_name=self.name,
            metric_symbol=metric.symbol,
            score=score,
            rationale=f"uninformed tools span {swing:.2f} of the metric scale",
            evidence={"swing": swing, "n_values": float(len(values))},
        )


class Discriminance(MetricProperty):
    """Separates tools of genuinely different quality on a finite workload.

    Each pair confronts a tool with a strictly better one (TPR up 0.10, FPR
    down), materialized at a realistic prevalence and workload size.  The
    separation strength is the z-score of the metric difference under its
    bootstrap sampling noise; the score averages ``min(1, z / 3)`` over the
    pairs, so a metric whose difference sits three standard errors clear of
    noise on every pair scores 1.0.
    """

    name = "discriminating"
    description = "separates close tools under sampling noise"

    def assess(self, metric: Metric, context: AssessmentContext) -> PropertyAssessment:
        """Score ``metric`` on this property (see the class docstring)."""
        prevalence = 0.15
        pairs = [
            (
                OperatingPoint(tpr, fpr),
                OperatingPoint(tpr + 0.10, max(fpr - 0.05, fpr * 0.5)),
            )
            for fpr in (0.05, 0.2)
            for tpr in (0.5, 0.6, 0.7, 0.8)
        ]
        strengths = []
        for index, (weaker, stronger) in enumerate(pairs):
            cm_weak = _integerize(weaker.matrix(prevalence, context.total_sites))
            cm_strong = _integerize(stronger.matrix(prevalence, context.total_sites))
            summary_weak = bootstrap_metric(
                metric,
                cm_weak,
                n_resamples=context.n_resamples,
                seed=context.stream_seed(f"disc:{index}:weak"),
            )
            summary_strong = bootstrap_metric(
                metric,
                cm_strong,
                n_resamples=context.n_resamples,
                seed=context.stream_seed(f"disc:{index}:strong"),
            )
            noise = math.hypot(summary_weak.std, summary_strong.std)
            if (
                math.isfinite(summary_weak.mean)
                and math.isfinite(summary_strong.mean)
                and noise > 0
            ):
                z = abs(summary_strong.mean - summary_weak.mean) / noise
                strengths.append(min(1.0, z / 3.0))
            else:
                strengths.append(0.0)
        score = float(np.mean(strengths))
        return PropertyAssessment(
            property_name=self.name,
            metric_symbol=metric.symbol,
            score=score,
            rationale=(
                f"mean separation strength {score:.2f} over {len(pairs)} "
                "better-vs-worse tool pairs"
            ),
            evidence={"pairs": float(len(pairs)), "mean_strength": score},
        )


class Repeatability(MetricProperty):
    """Stable across re-runs of the benchmark on same-population workloads.

    Scored from the bootstrap standard deviation at representative operating
    points, normalized by the metric scale; the factor of 5 maps a
    typical-for-ratio-metrics normalized std of ~0.02 to a score of ~0.9.
    """

    name = "repeatable"
    description = "low variance across same-population workloads"

    def assess(self, metric: Metric, context: AssessmentContext) -> PropertyAssessment:
        """Score ``metric`` on this property (see the class docstring)."""
        scale = _scale_for(metric, context)
        point = OperatingPoint(tpr=0.7, fpr=0.1)
        normalized_stds = []
        for index, prevalence in enumerate((0.05, 0.15, 0.35)):
            cm = _integerize(point.matrix(prevalence, context.total_sites))
            summary = bootstrap_metric(
                metric,
                cm,
                n_resamples=context.n_resamples,
                seed=context.stream_seed(f"repeat:{index}"),
            )
            if math.isfinite(summary.std):
                normalized_stds.append(summary.std / scale)
        if not normalized_stds:
            return PropertyAssessment(
                property_name=self.name,
                metric_symbol=metric.symbol,
                score=0.0,
                rationale="metric undefined under resampling",
            )
        mean_std = float(np.mean(normalized_stds))
        score = max(0.0, 1.0 - 5.0 * mean_std)
        return PropertyAssessment(
            property_name=self.name,
            metric_symbol=metric.symbol,
            score=score,
            rationale=f"mean normalized bootstrap std is {mean_std:.3f}",
            evidence={"mean_normalized_std": mean_std},
        )


def _integerize(cm: ConfusionMatrix) -> ConfusionMatrix:
    """Round an expected matrix to integer counts for resampling."""
    return ConfusionMatrix(
        tp=round(cm.tp), fp=round(cm.fp), fn=round(cm.fn), tn=round(cm.tn)
    )

"""The metric x property assessment matrix (experiment R2).

Running every property against every candidate metric yields the matrix the
paper's step-2 analysis tabulates.  The matrix is also the *criteria scoring*
input of the MCDA validation: AHP weighs the properties per scenario and
aggregates exactly these per-property scores.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.metrics.base import Metric
from repro.metrics.registry import MetricRegistry
from repro.properties.base import AssessmentContext, MetricProperty, PropertyAssessment
from repro.properties.checks import (
    Boundedness,
    ChanceCorrection,
    Definedness,
    Discriminance,
    PrevalenceInvariance,
    Repeatability,
    RewardsDetection,
    RewardsSilence,
)
from repro.properties.qualitative import Acceptance, Understandability

__all__ = ["default_properties", "PropertiesMatrix", "build_properties_matrix"]


def default_properties() -> list[MetricProperty]:
    """The ten characteristics the reproduction assesses, in table order."""
    return [
        Boundedness(),
        Definedness(),
        PrevalenceInvariance(),
        RewardsDetection(),
        RewardsSilence(),
        ChanceCorrection(),
        Discriminance(),
        Repeatability(),
        Understandability(),
        Acceptance(),
    ]


@dataclass(frozen=True)
class PropertiesMatrix:
    """metric x property scores with full assessment provenance."""

    metric_symbols: tuple[str, ...]
    property_names: tuple[str, ...]
    assessments: dict[tuple[str, str], PropertyAssessment]
    """Keyed by ``(metric_symbol, property_name)``."""

    def score(self, metric_symbol: str, property_name: str) -> float:
        """Score of one cell."""
        return self.assessment(metric_symbol, property_name).score

    def assessment(self, metric_symbol: str, property_name: str) -> PropertyAssessment:
        """Full assessment of one cell."""
        try:
            return self.assessments[(metric_symbol, property_name)]
        except KeyError:
            raise ConfigurationError(
                f"no assessment for metric {metric_symbol!r} / property {property_name!r}"
            ) from None

    def row(self, metric_symbol: str) -> dict[str, float]:
        """All property scores of one metric."""
        return {name: self.score(metric_symbol, name) for name in self.property_names}

    def column(self, property_name: str) -> dict[str, float]:
        """One property's score for every metric."""
        return {
            symbol: self.score(symbol, property_name) for symbol in self.metric_symbols
        }

    def weighted_scores(self, weights: dict[str, float]) -> dict[str, float]:
        """Composite score per metric under property ``weights``.

        Weights are normalized to sum to one; properties missing from
        ``weights`` get zero weight.  This is the simple additive model used
        as a sanity baseline next to the full AHP.
        """
        known = set(self.property_names)
        stray = set(weights) - known
        if stray:
            raise ConfigurationError(f"unknown properties in weights: {sorted(stray)}")
        total = sum(weights.values())
        if total <= 0:
            raise ConfigurationError("property weights must sum to a positive number")
        return {
            symbol: sum(
                weights.get(name, 0.0) * self.score(symbol, name)
                for name in self.property_names
            )
            / total
            for symbol in self.metric_symbols
        }


def build_properties_matrix(
    registry: MetricRegistry,
    properties: Sequence[MetricProperty] | None = None,
    context: AssessmentContext | None = None,
) -> PropertiesMatrix:
    """Assess every metric in ``registry`` against every property."""
    properties = list(properties) if properties is not None else default_properties()
    context = context if context is not None else AssessmentContext.default()
    names = [prop.name for prop in properties]
    if len(set(names)) != len(names):
        raise ConfigurationError("duplicate property names")
    assessments: dict[tuple[str, str], PropertyAssessment] = {}
    metrics: list[Metric] = list(registry)
    for metric in metrics:
        for prop in properties:
            assessments[(metric.symbol, prop.name)] = prop.assess(metric, context)
    return PropertiesMatrix(
        metric_symbols=tuple(m.symbol for m in metrics),
        property_names=tuple(names),
        assessments=assessments,
    )

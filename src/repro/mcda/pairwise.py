"""Pairwise comparison matrices (the judgment artifact of AHP).

Experts express "how much more important is criterion A than criterion B"
on Saaty's 1-9 scale; a full set of such judgments over n items forms a
positive reciprocal matrix.  This module implements the matrix itself, the
two classical priority-extraction methods (principal eigenvector, geometric
mean) and Saaty's consistency index/ratio.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, InconsistentJudgmentError

__all__ = [
    "SAATY_VALUES",
    "snap_to_saaty",
    "random_index",
    "PairwiseComparisonMatrix",
]

#: Admissible judgment values: 1..9 and their reciprocals.
SAATY_VALUES: tuple[float, ...] = tuple(
    sorted({float(k) for k in range(1, 10)} | {1.0 / k for k in range(1, 10)})
)

#: Saaty's random consistency index by matrix order (0- and 1-based entries
#: are zero by convention).  Values for n <= 15 are the standard table;
#: larger orders saturate near 1.6.
_RANDOM_INDEX = (
    0.0, 0.0, 0.0, 0.58, 0.90, 1.12, 1.24, 1.32, 1.41,
    1.45, 1.49, 1.51, 1.54, 1.56, 1.57, 1.59,
)


def random_index(n: int) -> float:
    """Saaty's random index RI(n)."""
    if n < 1:
        raise ConfigurationError(f"matrix order {n} must be >= 1")
    if n < len(_RANDOM_INDEX):
        return _RANDOM_INDEX[n]
    return 1.6


def snap_to_saaty(ratio: float) -> float:
    """Map an arbitrary positive ratio to the nearest Saaty judgment.

    Snapping happens in log space so 3 and 1/3 are symmetric choices around
    indifference; this is how the simulated experts discretize their latent
    preferences.
    """
    if ratio <= 0 or not np.isfinite(ratio):
        raise ConfigurationError(f"judgment ratio {ratio} must be positive and finite")
    log_ratio = np.log(ratio)
    best = min(SAATY_VALUES, key=lambda v: abs(np.log(v) - log_ratio))
    return best


@dataclass(frozen=True)
class PairwiseComparisonMatrix:
    """A positive reciprocal judgment matrix over labelled items."""

    labels: tuple[str, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.labels)
        if len(set(self.labels)) != n:
            raise ConfigurationError("duplicate labels in pairwise matrix")
        matrix = np.asarray(self.values, dtype=float)
        if matrix.shape != (n, n):
            raise ConfigurationError(
                f"matrix shape {matrix.shape} does not match {n} labels"
            )
        if not np.all(np.isfinite(matrix)) or np.any(matrix <= 0):
            raise ConfigurationError("judgments must be positive finite numbers")
        if not np.allclose(np.diag(matrix), 1.0):
            raise ConfigurationError("diagonal of a judgment matrix must be 1")
        if not np.allclose(matrix * matrix.T, 1.0, rtol=1e-6, atol=1e-9):
            raise ConfigurationError("matrix is not reciprocal (a_ij * a_ji != 1)")
        object.__setattr__(self, "values", matrix)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_weights(
        cls, labels: Sequence[str], weights: Sequence[float]
    ) -> "PairwiseComparisonMatrix":
        """Perfectly consistent matrix encoding ``weights`` (a_ij = w_i / w_j)."""
        if len(labels) != len(weights):
            raise ConfigurationError("labels and weights must have equal length")
        w = np.asarray(weights, dtype=float)
        if np.any(w <= 0):
            raise ConfigurationError("weights must be positive to form ratios")
        matrix = w[:, None] / w[None, :]
        return cls(labels=tuple(labels), values=matrix)

    @classmethod
    def from_judgments(
        cls,
        labels: Sequence[str],
        judgments: Mapping[tuple[str, str], float],
    ) -> "PairwiseComparisonMatrix":
        """Build from upper-triangle judgments; reciprocals are filled in.

        ``judgments[(a, b)] = 3`` means "a is moderately more important than
        b".  Every unordered pair must be judged exactly once.
        """
        labels = tuple(labels)
        index = {label: i for i, label in enumerate(labels)}
        n = len(labels)
        matrix = np.eye(n)
        seen: set[frozenset[str]] = set()
        for (a, b), value in judgments.items():
            if a not in index or b not in index:
                raise ConfigurationError(f"judgment over unknown labels ({a!r}, {b!r})")
            if a == b:
                raise ConfigurationError(f"self-judgment for {a!r}")
            pair = frozenset((a, b))
            if pair in seen:
                raise ConfigurationError(f"pair ({a!r}, {b!r}) judged twice")
            seen.add(pair)
            if value <= 0 or not np.isfinite(value):
                raise ConfigurationError(f"judgment {value} for ({a!r}, {b!r}) invalid")
            matrix[index[a], index[b]] = value
            matrix[index[b], index[a]] = 1.0 / value
        expected = n * (n - 1) // 2
        if len(seen) != expected:
            raise ConfigurationError(
                f"incomplete judgments: got {len(seen)} pairs, need {expected}"
            )
        return cls(labels=labels, values=matrix)

    # ------------------------------------------------------------------
    # Priorities
    # ------------------------------------------------------------------
    def priorities(self, method: str = "eigenvector") -> dict[str, float]:
        """Priority weights (sum to one) extracted from the judgments."""
        if method == "eigenvector":
            vector = self._principal_eigenvector()
        elif method == "geometric":
            logs = np.log(self.values)
            vector = np.exp(logs.mean(axis=1))
            vector = vector / vector.sum()
        else:
            raise ConfigurationError(
                f"unknown method {method!r}; use 'eigenvector' or 'geometric'"
            )
        return dict(zip(self.labels, (float(v) for v in vector)))

    def _principal_eigenvector(self, max_iterations: int = 500, tol: float = 1e-12) -> np.ndarray:
        """Power iteration; positive matrices converge by Perron-Frobenius."""
        n = len(self.labels)
        vector = np.full(n, 1.0 / n)
        for _ in range(max_iterations):
            nxt = self.values @ vector
            nxt = nxt / nxt.sum()
            if np.max(np.abs(nxt - vector)) < tol:
                vector = nxt
                break
            vector = nxt
        return vector

    @property
    def lambda_max(self) -> float:
        """Principal eigenvalue estimate."""
        vector = self._principal_eigenvector()
        ratios = (self.values @ vector) / vector
        return float(ratios.mean())

    @property
    def consistency_index(self) -> float:
        """CI = (lambda_max - n) / (n - 1); zero for consistent matrices."""
        n = len(self.labels)
        if n <= 2:
            return 0.0
        return (self.lambda_max - n) / (n - 1)

    @property
    def consistency_ratio(self) -> float:
        """CR = CI / RI; Saaty's acceptability threshold is 0.1."""
        n = len(self.labels)
        ri = random_index(n)
        if ri == 0.0:
            return 0.0
        return self.consistency_index / ri

    def require_consistency(self, threshold: float = 0.1) -> None:
        """Raise :class:`InconsistentJudgmentError` when CR exceeds ``threshold``."""
        cr = self.consistency_ratio
        if cr > threshold:
            raise InconsistentJudgmentError(
                f"consistency ratio {cr:.3f} exceeds threshold {threshold} "
                f"for matrix over {list(self.labels)}"
            )

    def __len__(self) -> int:
        return len(self.labels)

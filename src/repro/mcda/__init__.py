"""Multi-criteria decision analysis: AHP, SAW, TOPSIS, sensitivity."""

from repro.mcda.electre import ElectreResult, electre_i
from repro.mcda.promethee import PrometheeResult, promethee_ii
from repro.mcda.repair import RepairResult, blend_toward_consistency, repair_matrix
from repro.mcda.ahp import AhpHierarchy, AhpResult, comparison_from_scores
from repro.mcda.pairwise import (
    SAATY_VALUES,
    PairwiseComparisonMatrix,
    random_index,
    snap_to_saaty,
)
from repro.mcda.saw import SawResult, simple_additive_weighting
from repro.mcda.sensitivity import (
    PerturbationOutcome,
    SensitivityReport,
    weight_sensitivity,
)
from repro.mcda.topsis import TopsisResult, topsis

__all__ = [
    "ElectreResult",
    "electre_i",
    "PrometheeResult",
    "promethee_ii",
    "RepairResult",
    "blend_toward_consistency",
    "repair_matrix",
    "AhpHierarchy",
    "AhpResult",
    "comparison_from_scores",
    "SAATY_VALUES",
    "PairwiseComparisonMatrix",
    "random_index",
    "snap_to_saaty",
    "SawResult",
    "simple_additive_weighting",
    "PerturbationOutcome",
    "SensitivityReport",
    "weight_sensitivity",
    "TopsisResult",
    "topsis",
]

"""TOPSIS — Technique for Order of Preference by Similarity to Ideal Solution.

The second cross-validation method: alternatives are ranked by relative
closeness to the ideal (best value on every criterion) versus the anti-ideal.
Agreement between AHP, SAW and TOPSIS on a scenario's winner is the
reproduction's analogue of the paper's "the MCDA validation confirms the
analytical selection".
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["TopsisResult", "topsis"]


@dataclass(frozen=True)
class TopsisResult:
    """Outcome of a TOPSIS run: closeness coefficients in [0, 1]."""

    closeness: dict[str, float]

    @property
    def ranking(self) -> list[str]:
        """Alternatives, best first (ties broken by name)."""
        return [
            name
            for name, _ in sorted(self.closeness.items(), key=lambda kv: (-kv[1], kv[0]))
        ]

    @property
    def best(self) -> str:
        """The winning alternative."""
        return self.ranking[0]


def topsis(
    alternatives: Sequence[str],
    criteria_scores: Mapping[str, Mapping[str, float]],
    weights: Mapping[str, float],
) -> TopsisResult:
    """Rank ``alternatives`` by closeness to the ideal solution.

    All criteria are treated as benefit-type (higher is better), matching the
    property scores of this library.  Columns are vector-normalized; a
    constant column contributes nothing to the separation measures, as it
    should.
    """
    if not alternatives:
        raise ConfigurationError("no alternatives to rank")
    if set(weights) != set(criteria_scores):
        raise ConfigurationError("weights and criteria_scores must cover the same criteria")
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise ConfigurationError("weights must sum to a positive number")
    if any(w < 0 for w in weights.values()):
        raise ConfigurationError("weights must be non-negative")

    criteria = list(criteria_scores)
    matrix = np.zeros((len(alternatives), len(criteria)))
    for j, criterion in enumerate(criteria):
        column = criteria_scores[criterion]
        missing = [a for a in alternatives if a not in column]
        if missing:
            raise ConfigurationError(f"criterion {criterion!r} lacks scores for {missing}")
        matrix[:, j] = [column[a] for a in alternatives]

    norms = np.linalg.norm(matrix, axis=0)
    norms[norms == 0] = 1.0
    normalized = matrix / norms
    weight_vector = np.array([weights[c] / total_weight for c in criteria])
    weighted = normalized * weight_vector

    ideal = weighted.max(axis=0)
    anti_ideal = weighted.min(axis=0)
    distance_ideal = np.linalg.norm(weighted - ideal, axis=1)
    distance_anti = np.linalg.norm(weighted - anti_ideal, axis=1)
    denominator = distance_ideal + distance_anti
    # An alternative equal to both extremes (all columns constant) is 0/0;
    # define its closeness as 0.5 (indifference).
    closeness = np.where(denominator > 0, distance_anti / np.maximum(denominator, 1e-30), 0.5)
    return TopsisResult(closeness=dict(zip(alternatives, (float(c) for c in closeness))))

"""Consistency repair for pairwise judgment matrices.

Real expert panels routinely produce matrices with CR > 0.1, and sending a
questionnaire back costs a meeting.  Standard AHP practice instead *repairs*
the judgments minimally: blend the matrix, in log space, toward its own
implied consistent form (the ratio matrix of its geometric-mean priorities)
just far enough to pass Saaty's threshold.  Log-space blending preserves
reciprocity exactly and keeps the repaired judgments as close to the
originals as the target allows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.mcda.pairwise import PairwiseComparisonMatrix, snap_to_saaty

__all__ = ["RepairResult", "repair_matrix", "blend_toward_consistency"]


@dataclass(frozen=True)
class RepairResult:
    """Outcome of a consistency repair."""

    original: PairwiseComparisonMatrix
    repaired: PairwiseComparisonMatrix
    alpha: float
    """Blend strength used: 0 = untouched, 1 = fully consistent."""

    @property
    def was_needed(self) -> bool:
        """Whether any blending happened at all."""
        return self.alpha > 0.0

    @property
    def max_judgment_shift(self) -> float:
        """Largest multiplicative change applied to any judgment."""
        ratio = self.repaired.values / self.original.values
        return float(np.exp(np.abs(np.log(ratio)).max()))


def blend_toward_consistency(
    matrix: PairwiseComparisonMatrix, alpha: float
) -> PairwiseComparisonMatrix:
    """Blend ``matrix`` toward its implied consistent form.

    With priorities ``w`` (geometric-mean method), the implied consistent
    matrix is ``W[i,j] = w_i / w_j``; the blend is
    ``exp((1-alpha) log M + alpha log W)``.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ConfigurationError(f"alpha={alpha} must be in [0, 1]")
    priorities = matrix.priorities("geometric")
    weights = np.array([priorities[label] for label in matrix.labels])
    consistent = weights[:, None] / weights[None, :]
    blended = np.exp(
        (1.0 - alpha) * np.log(matrix.values) + alpha * np.log(consistent)
    )
    # Re-impose exact reciprocity against float drift.
    n = len(matrix.labels)
    for i in range(n):
        blended[i, i] = 1.0
        for j in range(i + 1, n):
            blended[j, i] = 1.0 / blended[i, j]
    return PairwiseComparisonMatrix(labels=matrix.labels, values=blended)


def repair_matrix(
    matrix: PairwiseComparisonMatrix,
    threshold: float = 0.1,
    step: float = 0.05,
    snap: bool = False,
) -> RepairResult:
    """Return the least-blended matrix with CR <= ``threshold``.

    ``alpha`` grows from 0 in increments of ``step`` until the consistency
    ratio passes; ``alpha = 1`` (fully consistent) always terminates the
    search.  With ``snap=True`` the repaired judgments are re-discretized to
    the Saaty scale — if snapping pushes CR back over the threshold, the
    search continues from the next alpha.
    """
    if threshold <= 0:
        raise ConfigurationError(f"threshold={threshold} must be positive")
    if not 0.0 < step <= 1.0:
        raise ConfigurationError(f"step={step} must be in (0, 1]")

    alpha = 0.0
    while True:
        candidate = blend_toward_consistency(matrix, alpha)
        if snap:
            candidate = _snap(candidate)
        if candidate.consistency_ratio <= threshold:
            return RepairResult(original=matrix, repaired=candidate, alpha=alpha)
        if alpha >= 1.0:
            # Fully consistent but snapping re-broke it: return unsnapped.
            candidate = blend_toward_consistency(matrix, 1.0)
            return RepairResult(original=matrix, repaired=candidate, alpha=1.0)
        alpha = min(1.0, alpha + step)


def _snap(matrix: PairwiseComparisonMatrix) -> PairwiseComparisonMatrix:
    n = len(matrix.labels)
    snapped = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            value = snap_to_saaty(float(matrix.values[i, j]))
            snapped[i, j] = value
            snapped[j, i] = 1.0 / value
    return PairwiseComparisonMatrix(labels=matrix.labels, values=snapped)

"""ELECTRE I — outranking-based MCDA.

A third methodological family next to the additive ones (AHP/SAW) and the
distance-based one (TOPSIS): ELECTRE builds a pairwise *outranking* relation
("a is at least as good as b") from a concordance test (enough criterion
weight agrees) vetoed by a discordance test (no criterion disagrees too
hard), then extracts the kernel of non-dominated alternatives.  Because it
never trades a catastrophic weakness away against many small strengths, it
is the natural robustness check for "is the winner merely compensating?".

A complete ranking is derived from net concordance flow (the
aggregated-dominance heuristic commonly paired with ELECTRE I), which the
experiments use to compare against AHP/SAW/TOPSIS orderings.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ElectreResult", "electre_i"]


@dataclass(frozen=True)
class ElectreResult:
    """Outcome of an ELECTRE I run."""

    alternatives: tuple[str, ...]
    outranks: frozenset[tuple[str, str]]
    """Pairs (a, b) where a outranks b."""
    kernel: frozenset[str]
    """Alternatives not outranked by anything outside the kernel."""
    net_flow: dict[str, float]
    """Net concordance flow per alternative (ranking heuristic)."""

    @property
    def ranking(self) -> list[str]:
        """Alternatives by net flow, best first (ties broken by name)."""
        return [
            name
            for name, _ in sorted(self.net_flow.items(), key=lambda kv: (-kv[1], kv[0]))
        ]

    @property
    def best(self) -> str:
        """The top alternative by net flow."""
        return self.ranking[0]

    def outranked_by(self, alternative: str) -> set[str]:
        """Everything ``alternative`` outranks."""
        if alternative not in self.alternatives:
            raise ConfigurationError(f"unknown alternative {alternative!r}")
        return {b for a, b in self.outranks if a == alternative}


def electre_i(
    alternatives: Sequence[str],
    criteria_scores: Mapping[str, Mapping[str, float]],
    weights: Mapping[str, float],
    concordance_threshold: float = 0.65,
    discordance_threshold: float = 0.35,
) -> ElectreResult:
    """Run ELECTRE I over benefit-type criteria scores.

    ``concordance_threshold`` is the minimum weight fraction that must agree
    with "a is at least as good as b"; ``discordance_threshold`` the maximum
    tolerated normalized opposition on any single criterion.
    """
    if not alternatives:
        raise ConfigurationError("no alternatives to rank")
    if set(weights) != set(criteria_scores):
        raise ConfigurationError("weights and criteria_scores must cover the same criteria")
    if not 0.0 < concordance_threshold <= 1.0:
        raise ConfigurationError(
            f"concordance_threshold={concordance_threshold} must be in (0, 1]"
        )
    if not 0.0 <= discordance_threshold <= 1.0:
        raise ConfigurationError(
            f"discordance_threshold={discordance_threshold} must be in [0, 1]"
        )
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise ConfigurationError("weights must sum to a positive number")
    if any(w < 0 for w in weights.values()):
        raise ConfigurationError("weights must be non-negative")

    names = list(alternatives)
    criteria = list(criteria_scores)
    matrix = np.zeros((len(names), len(criteria)))
    for j, criterion in enumerate(criteria):
        column = criteria_scores[criterion]
        missing = [a for a in names if a not in column]
        if missing:
            raise ConfigurationError(f"criterion {criterion!r} lacks scores for {missing}")
        matrix[:, j] = [column[a] for a in names]

    ranges = matrix.max(axis=0) - matrix.min(axis=0)
    ranges[ranges == 0] = 1.0  # constant criteria can neither concord nor discord
    normalized_weights = np.array([weights[c] / total_weight for c in criteria])

    n = len(names)
    outranks: set[tuple[str, str]] = set()
    concordance = np.zeros((n, n))
    for i in range(n):
        for k in range(n):
            if i == k:
                continue
            agrees = matrix[i] >= matrix[k]
            concordance[i, k] = float(normalized_weights[agrees].sum())
            opposition = (matrix[k] - matrix[i]) / ranges
            discordance = float(opposition.max()) if opposition.size else 0.0
            if (
                concordance[i, k] >= concordance_threshold
                and discordance <= discordance_threshold
            ):
                outranks.add((names[i], names[k]))

    # Kernel: alternatives not outranked by any alternative outside their
    # own outranked set (classical kernel of the strict relation).
    strict = {(a, b) for a, b in outranks if (b, a) not in outranks}
    dominated = {b for _, b in strict}
    kernel = frozenset(name for name in names if name not in dominated)

    net_flow = {
        names[i]: float(concordance[i].sum() - concordance[:, i].sum())
        for i in range(n)
    }
    return ElectreResult(
        alternatives=tuple(names),
        outranks=frozenset(outranks),
        kernel=kernel,
        net_flow=net_flow,
    )

"""Sensitivity analysis of the MCDA conclusion (experiment R10).

An MCDA ranking is only as trustworthy as it is stable: if nudging one
criterion's weight by a few percent flips the winner, the experts' exact
numbers matter more than their direction and the conclusion is fragile.
This module perturbs one criterion weight at a time (re-normalizing the
rest), re-runs the additive synthesis, and reports where the ranking starts
to move.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mcda.saw import simple_additive_weighting
from repro.stats.rank import kendall_tau

__all__ = ["PerturbationOutcome", "SensitivityReport", "weight_sensitivity"]


@dataclass(frozen=True, slots=True)
class PerturbationOutcome:
    """Result of scaling one criterion's weight by one factor."""

    criterion: str
    factor: float
    best: str
    best_changed: bool
    tau_vs_baseline: float


@dataclass(frozen=True)
class SensitivityReport:
    """All perturbation outcomes plus per-criterion stability summaries."""

    baseline_best: str
    baseline_ranking: tuple[str, ...]
    outcomes: tuple[PerturbationOutcome, ...]

    def outcomes_for(self, criterion: str) -> list[PerturbationOutcome]:
        """Perturbation outcomes of one criterion, ordered by factor."""
        rows = [o for o in self.outcomes if o.criterion == criterion]
        if not rows:
            raise ConfigurationError(f"no outcomes for criterion {criterion!r}")
        return sorted(rows, key=lambda o: o.factor)

    def stability(self, criterion: str) -> float:
        """Fraction of perturbations of ``criterion`` preserving the winner."""
        rows = self.outcomes_for(criterion)
        return sum(1 for o in rows if not o.best_changed) / len(rows)

    def reversal_factor(self, criterion: str) -> float | None:
        """The perturbation factor closest to 1 that flips the winner.

        ``None`` when no tested factor flips it (the conclusion is stable
        over the whole tested band for this criterion).
        """
        flips = [o.factor for o in self.outcomes_for(criterion) if o.best_changed]
        if not flips:
            return None
        return min(flips, key=lambda f: abs(math.log(f)))

    @property
    def overall_stability(self) -> float:
        """Fraction of all perturbations preserving the winner."""
        if not self.outcomes:
            return 1.0
        return sum(1 for o in self.outcomes if not o.best_changed) / len(self.outcomes)


def weight_sensitivity(
    alternatives: Sequence[str],
    criteria_scores: Mapping[str, Mapping[str, float]],
    weights: Mapping[str, float],
    factors: Sequence[float] = (0.5, 0.7, 0.85, 1.15, 1.3, 1.5, 2.0),
    normalize: str = "minmax",
) -> SensitivityReport:
    """Perturb each criterion weight by each factor and re-rank.

    The synthesis model is the additive one (SAW over the same criterion
    scores AHP aggregates), which makes the analysis method-agnostic in the
    sense that any weighted-additive MCDA inherits its conclusions.  Pass
    ``normalize="none"`` when ``criteria_scores`` are already commensurate
    (e.g. AHP local priorities), so the unperturbed baseline reproduces the
    AHP composition exactly.
    """
    if any(f <= 0 for f in factors):
        raise ConfigurationError("perturbation factors must be positive")
    baseline = simple_additive_weighting(
        alternatives, criteria_scores, weights, normalize=normalize
    )
    baseline_scores = [baseline.scores[a] for a in alternatives]

    outcomes: list[PerturbationOutcome] = []
    for criterion in weights:
        for factor in factors:
            perturbed = dict(weights)
            perturbed[criterion] = weights[criterion] * factor
            result = simple_additive_weighting(
                alternatives, criteria_scores, perturbed, normalize=normalize
            )
            scores = [result.scores[a] for a in alternatives]
            outcomes.append(
                PerturbationOutcome(
                    criterion=criterion,
                    factor=factor,
                    best=result.best,
                    best_changed=result.best != baseline.best,
                    tau_vs_baseline=kendall_tau(baseline_scores, scores),
                )
            )
    return SensitivityReport(
        baseline_best=baseline.best,
        baseline_ranking=tuple(baseline.ranking),
        outcomes=tuple(outcomes),
    )

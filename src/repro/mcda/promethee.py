"""PROMETHEE II — pairwise-preference MCDA with net outranking flows.

The fourth methodological family in the cross-check suite: where AHP/SAW
aggregate *scores*, TOPSIS aggregates *distances* and ELECTRE tests
*vetoes*, PROMETHEE aggregates *pairwise preference intensities*.  Each
criterion gets a preference function turning a score difference into a
preference degree in [0, 1]; the weighted mean over criteria gives the
preference index of one alternative over another, and the net flow (how
strongly an alternative is preferred minus how strongly others are
preferred over it) yields a complete ranking.

Two classical preference shapes are provided: ``usual`` (any positive
difference counts fully — Type I) and ``linear`` (preference grows linearly
up to a full-preference threshold — Type III), which is the default because
benchmark property scores are continuous.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PrometheeResult", "promethee_ii"]


@dataclass(frozen=True)
class PrometheeResult:
    """Outcome of a PROMETHEE II run."""

    positive_flow: dict[str, float]
    """How strongly each alternative is preferred over the rest."""
    negative_flow: dict[str, float]
    """How strongly the rest are preferred over each alternative."""

    @property
    def net_flow(self) -> dict[str, float]:
        """Positive minus negative flow (the PROMETHEE II ranking score)."""
        return {
            name: self.positive_flow[name] - self.negative_flow[name]
            for name in self.positive_flow
        }

    @property
    def ranking(self) -> list[str]:
        """Alternatives by net flow, best first (ties broken by name)."""
        flows = self.net_flow
        return [
            name for name, _ in sorted(flows.items(), key=lambda kv: (-kv[1], kv[0]))
        ]

    @property
    def best(self) -> str:
        """The winning alternative."""
        return self.ranking[0]


def promethee_ii(
    alternatives: Sequence[str],
    criteria_scores: Mapping[str, Mapping[str, float]],
    weights: Mapping[str, float],
    preference: str = "linear",
    full_preference_fraction: float = 0.25,
) -> PrometheeResult:
    """Rank ``alternatives`` by PROMETHEE II net flows.

    All criteria are benefit-type (higher is better).  With
    ``preference="linear"``, a score advantage of
    ``full_preference_fraction`` of the criterion's observed range earns
    full preference; smaller advantages earn proportionally less.  With
    ``preference="usual"``, any advantage earns full preference.
    """
    if not alternatives:
        raise ConfigurationError("no alternatives to rank")
    if len(set(alternatives)) != len(alternatives):
        raise ConfigurationError("duplicate alternatives")
    if set(weights) != set(criteria_scores):
        raise ConfigurationError("weights and criteria_scores must cover the same criteria")
    if preference not in ("usual", "linear"):
        raise ConfigurationError(
            f"preference={preference!r} must be 'usual' or 'linear'"
        )
    if not 0.0 < full_preference_fraction <= 1.0:
        raise ConfigurationError(
            f"full_preference_fraction={full_preference_fraction} must be in (0, 1]"
        )
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise ConfigurationError("weights must sum to a positive number")
    if any(w < 0 for w in weights.values()):
        raise ConfigurationError("weights must be non-negative")

    names = list(alternatives)
    criteria = list(criteria_scores)
    matrix = np.zeros((len(names), len(criteria)))
    for j, criterion in enumerate(criteria):
        column = criteria_scores[criterion]
        missing = [a for a in names if a not in column]
        if missing:
            raise ConfigurationError(f"criterion {criterion!r} lacks scores for {missing}")
        matrix[:, j] = [column[a] for a in names]

    ranges = matrix.max(axis=0) - matrix.min(axis=0)
    thresholds = ranges * full_preference_fraction
    normalized_weights = np.array([weights[c] / total_weight for c in criteria])

    n = len(names)
    if n == 1:
        return PrometheeResult(
            positive_flow={names[0]: 0.0}, negative_flow={names[0]: 0.0}
        )

    preference_index = np.zeros((n, n))
    for i in range(n):
        for k in range(n):
            if i == k:
                continue
            differences = matrix[i] - matrix[k]
            if preference == "usual":
                degrees = (differences > 0).astype(float)
            else:
                degrees = np.zeros(len(criteria))
                for j, threshold in enumerate(thresholds):
                    if differences[j] <= 0:
                        continue
                    if threshold == 0:
                        degrees[j] = 1.0
                    else:
                        degrees[j] = min(1.0, differences[j] / threshold)
            preference_index[i, k] = float((normalized_weights * degrees).sum())

    positive = {names[i]: float(preference_index[i].sum()) / (n - 1) for i in range(n)}
    negative = {names[i]: float(preference_index[:, i].sum()) / (n - 1) for i in range(n)}
    return PrometheeResult(positive_flow=positive, negative_flow=negative)

"""The Analytic Hierarchy Process (the paper's MCDA algorithm).

The validation hierarchy has three levels:

- **goal**: select the most adequate metric for a scenario;
- **criteria**: the good-metric properties, weighted by a pairwise
  comparison matrix elicited from experts for that scenario;
- **alternatives**: the candidate metrics, compared pairwise under each
  criterion (in this reproduction, derived from the executable properties
  matrix, optionally perturbed by each expert's judgment noise).

:func:`comparison_from_scores` bridges numeric criterion scores into Saaty
ratios so programmatic evidence and human-style judgments meet in the same
formalism.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.mcda.pairwise import PairwiseComparisonMatrix

__all__ = ["AhpResult", "AhpHierarchy", "comparison_from_scores"]

#: Pseudo-count keeping zero scores comparable (a score of 0 vs 0.9 should
#: read as "extremely less adequate", not divide-by-zero).
_SCORE_EPSILON = 0.05


def comparison_from_scores(
    labels: Sequence[str],
    scores: Sequence[float],
    snap: bool = False,
) -> PairwiseComparisonMatrix:
    """Turn per-item scores into a pairwise comparison matrix.

    Ratios are clipped into Saaty's [1/9, 9] band; with ``snap=True`` they
    are additionally discretized to the 1-9 scale (as a human expert would
    report them).
    """
    if len(labels) != len(scores):
        raise ConfigurationError("labels and scores must have equal length")
    shifted = np.asarray(scores, dtype=float) + _SCORE_EPSILON
    if np.any(~np.isfinite(shifted)) or np.any(shifted <= 0):
        raise ConfigurationError("scores must be finite and >= 0")
    matrix = shifted[:, None] / shifted[None, :]
    matrix = np.clip(matrix, 1.0 / 9.0, 9.0)
    if snap:
        from repro.mcda.pairwise import snap_to_saaty

        n = len(labels)
        snapped = np.eye(n)
        for i in range(n):
            for j in range(i + 1, n):
                value = snap_to_saaty(float(matrix[i, j]))
                snapped[i, j] = value
                snapped[j, i] = 1.0 / value
        matrix = snapped
    else:
        # Re-impose exact reciprocity after clipping.
        n = len(labels)
        for i in range(n):
            matrix[i, i] = 1.0
            for j in range(i + 1, n):
                matrix[j, i] = 1.0 / matrix[i, j]
    return PairwiseComparisonMatrix(labels=tuple(labels), values=matrix)


@dataclass(frozen=True)
class AhpResult:
    """Composed outcome of one AHP run."""

    criteria_weights: dict[str, float]
    alternative_priorities: dict[str, float]
    """Global priority per alternative (sums to one)."""
    consistency_ratios: dict[str, float]
    """CR of the criteria matrix (key ``"criteria"``) and of each
    per-criterion alternatives matrix (keyed by criterion name)."""

    @property
    def ranking(self) -> list[str]:
        """Alternatives, best first (ties broken by name for stability)."""
        return [
            name
            for name, _ in sorted(
                self.alternative_priorities.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]

    @property
    def best(self) -> str:
        """The winning alternative."""
        return self.ranking[0]

    @property
    def max_consistency_ratio(self) -> float:
        """Worst CR across all judgment matrices in the hierarchy."""
        return max(self.consistency_ratios.values())

    def is_acceptably_consistent(self, threshold: float = 0.1) -> bool:
        """Saaty's acceptability test applied to the whole hierarchy."""
        return self.max_consistency_ratio <= threshold


@dataclass(frozen=True)
class AhpHierarchy:
    """A fully specified goal / criteria / alternatives hierarchy."""

    criteria: PairwiseComparisonMatrix
    alternatives: Mapping[str, PairwiseComparisonMatrix]
    """Per-criterion comparisons of the alternatives; keys must exactly
    match the criteria labels."""

    def __post_init__(self) -> None:
        criterion_names = set(self.criteria.labels)
        matrix_names = set(self.alternatives)
        if criterion_names != matrix_names:
            raise ConfigurationError(
                "alternatives matrices must cover the criteria exactly; "
                f"missing={sorted(criterion_names - matrix_names)}, "
                f"extra={sorted(matrix_names - criterion_names)}"
            )
        label_sets = {matrix.labels for matrix in self.alternatives.values()}
        if len(label_sets) != 1:
            raise ConfigurationError(
                "all alternatives matrices must compare the same alternatives "
                "in the same order"
            )

    @property
    def alternative_labels(self) -> tuple[str, ...]:
        """The alternatives being ranked."""
        return next(iter(self.alternatives.values())).labels

    def compose(self, method: str = "eigenvector") -> AhpResult:
        """Synthesize global priorities (the classical distributive mode)."""
        criteria_weights = self.criteria.priorities(method)
        consistency = {"criteria": self.criteria.consistency_ratio}
        totals = {label: 0.0 for label in self.alternative_labels}
        for criterion, weight in criteria_weights.items():
            matrix = self.alternatives[criterion]
            consistency[criterion] = matrix.consistency_ratio
            local = matrix.priorities(method)
            for label, priority in local.items():
                totals[label] += weight * priority
        total = sum(totals.values())
        priorities = {label: value / total for label, value in totals.items()}
        return AhpResult(
            criteria_weights=criteria_weights,
            alternative_priorities=priorities,
            consistency_ratios=consistency,
        )

"""Simple Additive Weighting (SAW) — the baseline MCDA method.

SAW normalizes each criterion's scores over the alternatives and takes the
weighted sum.  It is the transparent cross-check next to AHP: when both
methods agree on a scenario's best metric, the conclusion does not hinge on
MCDA machinery.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SawResult", "simple_additive_weighting"]


@dataclass(frozen=True)
class SawResult:
    """Outcome of a SAW run."""

    scores: dict[str, float]
    weights: dict[str, float]

    @property
    def ranking(self) -> list[str]:
        """Alternatives, best first (ties broken by name)."""
        return [
            name
            for name, _ in sorted(self.scores.items(), key=lambda kv: (-kv[1], kv[0]))
        ]

    @property
    def best(self) -> str:
        """The winning alternative."""
        return self.ranking[0]


def _normalize_column(values: Sequence[float]) -> list[float]:
    """Min-max normalize to [0, 1]; a constant column normalizes to all-ones
    (it cannot differentiate alternatives, so it should not penalize any)."""
    low, high = min(values), max(values)
    if high == low:
        return [1.0] * len(values)
    return [(v - low) / (high - low) for v in values]


def simple_additive_weighting(
    alternatives: Sequence[str],
    criteria_scores: Mapping[str, Mapping[str, float]],
    weights: Mapping[str, float],
    normalize: str = "minmax",
) -> SawResult:
    """Rank ``alternatives`` by the weighted sum of normalized scores.

    ``criteria_scores[criterion][alternative]`` are benefit-type scores
    (higher is better).  ``weights`` are normalized internally.
    ``normalize`` selects the column treatment: ``"minmax"`` (the classical
    SAW rescale) or ``"none"`` (use scores as-is — required when the scores
    are already commensurate, e.g. AHP local priorities, and the weighted
    sum must equal the AHP composition).
    """
    if normalize not in ("minmax", "none"):
        raise ConfigurationError(
            f"normalize={normalize!r} must be 'minmax' or 'none'"
        )
    if not alternatives:
        raise ConfigurationError("no alternatives to rank")
    if set(weights) != set(criteria_scores):
        raise ConfigurationError(
            "weights and criteria_scores must cover the same criteria"
        )
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise ConfigurationError("weights must sum to a positive number")
    if any(w < 0 for w in weights.values()):
        raise ConfigurationError("weights must be non-negative")

    totals = {alternative: 0.0 for alternative in alternatives}
    for criterion, weight in weights.items():
        column = criteria_scores[criterion]
        missing = [a for a in alternatives if a not in column]
        if missing:
            raise ConfigurationError(
                f"criterion {criterion!r} lacks scores for {missing}"
            )
        raw = [column[a] for a in alternatives]
        normalized = _normalize_column(raw) if normalize == "minmax" else raw
        for alternative, value in zip(alternatives, normalized):
            totals[alternative] += (weight / total_weight) * value
    return SawResult(scores=totals, weights={k: v / total_weight for k, v in weights.items()})

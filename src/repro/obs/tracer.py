"""Structured tracing: nested, thread-safe spans with Chrome-trace export.

A :class:`Tracer` records *spans* — named intervals with wall time, thread
id and parent attribution — as the engine works.  Spans nest per thread
(the parent is whatever span is open on the same thread), so a parallel
run under :class:`~concurrent.futures.ThreadPoolExecutor` yields one clean
span tree per worker instead of interleaved garbage.  The recorded timeline
exports as `Chrome trace format`_ JSON, loadable by ``chrome://tracing``
and `Perfetto <https://ui.perfetto.dev>`_, and aggregates into a per-name
summary small enough to embed in a run manifest.

Tracing is opt-in: a tracer constructed with ``enabled=False`` turns
``span()`` into a shared no-op context manager, so the instrumentation
threaded through the engine costs nearly nothing when nobody asked for a
timeline.

Hot-path design (the *ring lane*): closing a span appends one preallocated
ring-buffer slot — an interned name id, two ``perf_counter_ns`` readings,
and the raw args mapping — under a single short lock hold.  No
:class:`SpanRecord` is built, nothing is sorted, and no value is coerced
until the ring *drains* into the nested record lane (on wraparound, on any
read, or at export), so a span costs a small constant on the recording
side and the expensive bookkeeping runs once per drained batch.  See
``docs/observability.md`` for when spans sit in the ring versus the nested
lane.

.. _Chrome trace format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import itertools
import threading
import time
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "SpanRecord",
    "Tracer",
    "TRACE_SCHEMA",
    "DEFAULT_RING_CAPACITY",
    "spans_from_chrome_trace",
]

TRACE_SCHEMA = "repro/trace@1"

#: Ring-lane slots preallocated per tracer.  Sized so steady-state span
#: traffic (a few thousand spans per experiment) drains in large batches;
#: memory cost is one tuple reference per slot.
DEFAULT_RING_CAPACITY = 4096


def _json_safe(value: Any) -> Any:
    """Span args must survive JSON round-trips; coerce the rest to str."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: a named interval on one thread."""

    name: str
    """Dotted span name (see the taxonomy in ``docs/observability.md``)."""
    start: float
    """Seconds since the tracer's epoch."""
    duration: float
    """Wall-clock seconds the span stayed open."""
    thread_id: int
    """``threading.get_ident()`` of the opening thread."""
    span_id: int
    """Tracer-unique id, in open order."""
    parent_id: int | None
    """Enclosing span on the same thread, if any."""
    args: tuple[tuple[str, Any], ...] = ()
    """Sorted ``(key, value)`` annotations passed to :meth:`Tracer.span`."""


class _NoopSpan:
    """The shared context manager a disabled tracer hands out.

    Stateless and therefore reentrant: one module-level instance serves
    every ``span()`` call on every disabled tracer, so the disabled path
    allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """One live span: the context manager :meth:`Tracer.span` returns.

    A plain ``__slots__`` class instead of ``@contextmanager`` — the
    generator machinery alone costs more than the whole ring-lane write.
    """

    __slots__ = ("_tracer", "_name", "_args", "_span_id", "_parent_id", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, args: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> int:
        tracer = self._tracer
        local = tracer._local
        try:
            stack = local.stack
        except AttributeError:
            stack = local.stack = []
        self._parent_id = stack[-1] if stack else None
        span_id = next(tracer._ids)
        self._span_id = span_id
        stack.append(span_id)
        self._start_ns = time.perf_counter_ns()
        return span_id

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        tracer = self._tracer
        tracer._local.stack.pop()
        name = self._name
        name_id = tracer._name_ids.get(name)
        if name_id is None:
            name_id = tracer._intern(name)
        entry = (
            name_id,
            self._start_ns,
            end_ns - self._start_ns,
            threading.get_ident(),
            self._span_id,
            self._parent_id,
            self._args or None,
        )
        with tracer._lock:
            seq = tracer._seq
            tracer._seq = seq + 1
            ring = tracer._ring
            if ring:
                slot = seq % len(ring)
                if ring[slot] is not None:
                    tracer._drain_locked()
                ring[slot] = (seq, entry)
                tracer._ring_live += 1
            else:
                tracer._records.append((seq, tracer._entry_record(entry)))
        return False


class Tracer:
    """Thread-safe span recorder with Chrome-trace-format export.

    ``ring_capacity`` sizes the hot-path ring lane; ``0`` disables it, so
    every span builds its :class:`SpanRecord` eagerly on close (the
    reference slow path the fast-path tests compare against).
    """

    def __init__(
        self, enabled: bool = True, ring_capacity: int = DEFAULT_RING_CAPACITY
    ) -> None:
        if ring_capacity < 0:
            raise ConfigurationError(
                f"ring_capacity must be >= 0, got {ring_capacity}"
            )
        self.enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch_ns = time.perf_counter_ns()
        self._epoch = self._epoch_ns * 1e-9
        self.epoch_unix = time.time()
        """Wall-clock time of the tracer's epoch; lets two tracers' span
        timelines be aligned (see :meth:`ingest`)."""
        self._ids = itertools.count()
        self._seq = 0
        self._names: list[str] = []
        self._name_ids: dict[str, int] = {}
        #: Ring lane: preallocated ``(seq, entry)`` slots, drained to
        #: ``_records`` on wraparound or on any read.
        self._ring: list[tuple[int, tuple] | None] = [None] * ring_capacity
        self._ring_live = 0
        #: Nested record lane: ``(seq, SpanRecord)`` in close order.
        self._records: list[tuple[int, SpanRecord]] = []

    # -- recording ----------------------------------------------------------
    def span(self, name: str, **args: Any):
        """Open a span named ``name`` until the ``with`` block exits.

        The context manager yields the span id (``None`` when tracing is
        disabled).  The span is recorded on close, so exceptions still
        leave a complete timeline.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, args)

    def _intern(self, name: str) -> int:
        """Assign (or look up) the ring-lane id of a span name."""
        with self._lock:
            name_id = self._name_ids.get(name)
            if name_id is None:
                name_id = len(self._names)
                self._names.append(name)
                self._name_ids[name] = name_id
            return name_id

    def _entry_record(self, entry: tuple) -> SpanRecord:
        """Build the full :class:`SpanRecord` a ring entry deferred."""
        name_id, start_ns, dur_ns, thread_id, span_id, parent_id, args = entry
        return SpanRecord(
            name=self._names[name_id],
            start=(start_ns - self._epoch_ns) * 1e-9,
            duration=dur_ns * 1e-9,
            thread_id=thread_id,
            span_id=span_id,
            parent_id=parent_id,
            args=(
                tuple(sorted((k, _json_safe(v)) for k, v in args.items()))
                if args
                else ()
            ),
        )

    def _drain_locked(self) -> None:
        """Move every live ring entry into the record lane (lock held).

        Entries drain in close (``seq``) order, and every live entry's seq
        exceeds every already-drained record's, so ``_records`` stays
        sorted by construction.
        """
        if not self._ring_live:
            return
        live = sorted(slot for slot in self._ring if slot is not None)
        for seq, entry in live:
            self._records.append((seq, self._entry_record(entry)))
        for slot in range(len(self._ring)):
            self._ring[slot] = None
        self._ring_live = 0

    def ingest(
        self, records: Iterable[SpanRecord], offset_seconds: float = 0.0
    ) -> None:
        """Stitch spans recorded by another tracer onto this timeline.

        ``offset_seconds`` shifts the incoming starts onto this tracer's
        epoch — pass the difference of the two tracers' ``epoch_unix``
        anchors.  Span ids are remapped so merged records never collide
        with locally recorded ones; parent links *within* the batch are
        preserved.  This is how the process executor folds worker-side
        span trees into the parent run's single exported trace.
        """
        if not self.enabled:
            return
        batch = list(records)
        with self._lock:
            self._drain_locked()
            mapping = {record.span_id: next(self._ids) for record in batch}
            for record in batch:
                seq = self._seq
                self._seq = seq + 1
                self._records.append(
                    (
                        seq,
                        SpanRecord(
                            name=record.name,
                            start=record.start + offset_seconds,
                            duration=record.duration,
                            thread_id=record.thread_id,
                            span_id=mapping[record.span_id],
                            parent_id=mapping.get(record.parent_id),
                            args=record.args,
                        ),
                    )
                )

    # -- reading back -------------------------------------------------------
    @property
    def spans(self) -> list[SpanRecord]:
        """Every closed span so far, in close order."""
        with self._lock:
            self._drain_locked()
            return [record for _, record in self._records]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records) + self._ring_live

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-name totals: ``{name: {"count": n, "seconds": total}}``.

        Names sort lexicographically so the summary is byte-stable across
        serial and parallel runs (modulo the timing values themselves).
        """
        totals: dict[str, dict[str, float]] = {}
        for record in self.spans:
            entry = totals.setdefault(record.name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += record.duration
        return {name: totals[name] for name in sorted(totals)}

    def to_chrome_trace(self) -> dict[str, Any]:
        """The timeline as Chrome trace format (complete ``"X"`` events).

        Timestamps and durations are microseconds, per the format; the
        tracer's schema tag rides in ``otherData`` for round-trip checks.
        """
        events = []
        for record in sorted(self.spans, key=lambda r: (r.start, r.span_id)):
            args: dict[str, Any] = dict(record.args)
            args["span_id"] = record.span_id
            if record.parent_id is not None:
                args["parent_id"] = record.parent_id
            events.append(
                {
                    "name": record.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": record.start * 1e6,
                    "dur": record.duration * 1e6,
                    "pid": 1,
                    "tid": record.thread_id,
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA},
        }


def spans_from_chrome_trace(payload: dict[str, Any]) -> list[SpanRecord]:
    """Rebuild :class:`SpanRecord` objects from an exported trace.

    Validates the embedded schema tag and fails loudly on drift, mirroring
    the persistence convention in :mod:`repro.persist`.
    """
    found = payload.get("otherData", {}).get("schema")
    if found != TRACE_SCHEMA:
        raise ConfigurationError(
            f"expected schema {TRACE_SCHEMA!r}, found {found!r}"
        )
    records = []
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id")
        parent_id = args.pop("parent_id", None)
        records.append(
            SpanRecord(
                name=event["name"],
                start=event["ts"] / 1e6,
                duration=event["dur"] / 1e6,
                thread_id=event["tid"],
                span_id=span_id,
                parent_id=parent_id,
                args=tuple(sorted(args.items())),
            )
        )
    return records

"""Structured tracing: nested, thread-safe spans with Chrome-trace export.

A :class:`Tracer` records *spans* — named intervals with wall time, thread
id and parent attribution — as the engine works.  Spans nest per thread
(the parent is whatever span is open on the same thread), so a parallel
run under :class:`~concurrent.futures.ThreadPoolExecutor` yields one clean
span tree per worker instead of interleaved garbage.  The recorded timeline
exports as `Chrome trace format`_ JSON, loadable by ``chrome://tracing``
and `Perfetto <https://ui.perfetto.dev>`_, and aggregates into a per-name
summary small enough to embed in a run manifest.

Tracing is opt-in: a tracer constructed with ``enabled=False`` turns
``span()`` into a reusable no-op context manager, so the instrumentation
threaded through the engine costs nearly nothing when nobody asked for a
timeline.

.. _Chrome trace format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["SpanRecord", "Tracer", "TRACE_SCHEMA", "spans_from_chrome_trace"]

TRACE_SCHEMA = "repro/trace@1"


def _json_safe(value: Any) -> Any:
    """Span args must survive JSON round-trips; coerce the rest to str."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: a named interval on one thread."""

    name: str
    """Dotted span name (see the taxonomy in ``docs/observability.md``)."""
    start: float
    """Seconds since the tracer's epoch."""
    duration: float
    """Wall-clock seconds the span stayed open."""
    thread_id: int
    """``threading.get_ident()`` of the opening thread."""
    span_id: int
    """Tracer-unique id, in open order."""
    parent_id: int | None
    """Enclosing span on the same thread, if any."""
    args: tuple[tuple[str, Any], ...] = ()
    """Sorted ``(key, value)`` annotations passed to :meth:`Tracer.span`."""


class Tracer:
    """Thread-safe span recorder with Chrome-trace-format export."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self.epoch_unix = time.time()
        """Wall-clock time of the tracer's epoch; lets two tracers' span
        timelines be aligned (see :meth:`ingest`)."""
        self._next_id = 0

    # -- recording ----------------------------------------------------------
    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[int | None]:
        """Open a span named ``name`` until the ``with`` block exits.

        Yields the span id (``None`` when tracing is disabled).  The span is
        recorded on close, so exceptions still leave a complete timeline.
        """
        if not self.enabled:
            yield None
            return
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        stack.append(span_id)
        started = time.perf_counter()
        try:
            yield span_id
        finally:
            duration = time.perf_counter() - started
            stack.pop()
            record = SpanRecord(
                name=name,
                start=started - self._epoch,
                duration=duration,
                thread_id=threading.get_ident(),
                span_id=span_id,
                parent_id=parent_id,
                args=tuple(sorted((k, _json_safe(v)) for k, v in args.items())),
            )
            with self._lock:
                self._records.append(record)

    def ingest(
        self, records: Iterable[SpanRecord], offset_seconds: float = 0.0
    ) -> None:
        """Stitch spans recorded by another tracer onto this timeline.

        ``offset_seconds`` shifts the incoming starts onto this tracer's
        epoch — pass the difference of the two tracers' ``epoch_unix``
        anchors.  Span ids are remapped so merged records never collide
        with locally recorded ones; parent links *within* the batch are
        preserved.  This is how the process executor folds worker-side
        span trees into the parent run's single exported trace.
        """
        if not self.enabled:
            return
        batch = list(records)
        with self._lock:
            mapping = {record.span_id: self._next_id + i for i, record in enumerate(batch)}
            self._next_id += len(batch)
            for record in batch:
                self._records.append(
                    SpanRecord(
                        name=record.name,
                        start=record.start + offset_seconds,
                        duration=record.duration,
                        thread_id=record.thread_id,
                        span_id=mapping[record.span_id],
                        parent_id=mapping.get(record.parent_id),
                        args=record.args,
                    )
                )

    # -- reading back -------------------------------------------------------
    @property
    def spans(self) -> list[SpanRecord]:
        """Every closed span so far, in close order."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-name totals: ``{name: {"count": n, "seconds": total}}``.

        Names sort lexicographically so the summary is byte-stable across
        serial and parallel runs (modulo the timing values themselves).
        """
        totals: dict[str, dict[str, float]] = {}
        for record in self.spans:
            entry = totals.setdefault(record.name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += record.duration
        return {name: totals[name] for name in sorted(totals)}

    def to_chrome_trace(self) -> dict[str, Any]:
        """The timeline as Chrome trace format (complete ``"X"`` events).

        Timestamps and durations are microseconds, per the format; the
        tracer's schema tag rides in ``otherData`` for round-trip checks.
        """
        events = []
        for record in sorted(self.spans, key=lambda r: (r.start, r.span_id)):
            args: dict[str, Any] = dict(record.args)
            args["span_id"] = record.span_id
            if record.parent_id is not None:
                args["parent_id"] = record.parent_id
            events.append(
                {
                    "name": record.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": record.start * 1e6,
                    "dur": record.duration * 1e6,
                    "pid": 1,
                    "tid": record.thread_id,
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA},
        }


def spans_from_chrome_trace(payload: dict[str, Any]) -> list[SpanRecord]:
    """Rebuild :class:`SpanRecord` objects from an exported trace.

    Validates the embedded schema tag and fails loudly on drift, mirroring
    the persistence convention in :mod:`repro.persist`.
    """
    found = payload.get("otherData", {}).get("schema")
    if found != TRACE_SCHEMA:
        raise ConfigurationError(
            f"expected schema {TRACE_SCHEMA!r}, found {found!r}"
        )
    records = []
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id")
        parent_id = args.pop("parent_id", None)
        records.append(
            SpanRecord(
                name=event["name"],
                start=event["ts"] / 1e6,
                duration=event["dur"] / 1e6,
                thread_id=event["tid"],
                span_id=span_id,
                parent_id=parent_id,
                args=tuple(sorted(args.items())),
            )
        )
    return records

"""Observability for the experiment engine: spans, metrics, profiles.

The suite asks vulnerability detection tools to expose what they did well
enough to be measured; this package holds the suite to the same standard.
Three zero-dependency pieces, bundled by :class:`Observability`:

- :class:`~repro.obs.tracer.Tracer` — nested, thread-safe spans with wall
  time, thread id and parent attribution, exported as Chrome-trace-format
  JSON (``--trace``, viewable in Perfetto) and summarized per name;
- :class:`~repro.obs.metrics.MetricsRegistry` — process-local counters,
  gauges and fixed-bucket histograms (``--metrics-out``, ``repro stats``),
  with a dump differ for run-to-run regression flagging;
- :class:`~repro.obs.profiling.Profiler` — opt-in cProfile wrapping per
  experiment (``--profile``), writing ``.pstats`` plus a hotspot table.

The engine threads one :class:`Observability` through the
:class:`~repro.bench.engine.artifacts.ArtifactStore`, the scheduler and
every :class:`~repro.bench.engine.context.RunContext`, so experiments
reach it as ``ctx.span(...)`` / ``ctx.metrics``.  Defaults are cheap:
metrics counters are always live (they are a handful of dict updates per
artifact), while tracing and profiling stay off until a run opts in.

See ``docs/observability.md`` for the span taxonomy and counter reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsDiff,
    MetricsRegistry,
    diff_dumps,
)
from repro.obs.profiling import HotspotRow, Profiler, ProfileReport
from repro.obs.tracer import (
    DEFAULT_RING_CAPACITY,
    TRACE_SCHEMA,
    SpanRecord,
    Tracer,
    spans_from_chrome_trace,
)

__all__ = [
    "Observability",
    "Tracer",
    "SpanRecord",
    "spans_from_chrome_trace",
    "TRACE_SCHEMA",
    "DEFAULT_RING_CAPACITY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsDiff",
    "diff_dumps",
    "METRICS_SCHEMA",
    "DEFAULT_SECONDS_BUCKETS",
    "Profiler",
    "ProfileReport",
    "HotspotRow",
]


@dataclass
class Observability:
    """The bundle the engine threads through a run.

    The default construction is what every standalone ``run()`` call gets:
    live counters, disabled tracer, no profiler — cheap enough to leave on
    unconditionally.
    """

    tracer: Tracer = field(default_factory=lambda: Tracer(enabled=False))
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    profiler: Profiler | None = None

    @classmethod
    def enabled(cls, profiler: Profiler | None = None) -> "Observability":
        """An instance with tracing on (what ``--trace`` constructs)."""
        return cls(tracer=Tracer(enabled=True), profiler=profiler)

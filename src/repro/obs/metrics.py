"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the quantitative half of the observability
layer: the engine bumps counters (cache hits, experiments completed, units
processed), sets gauges (wall seconds, jobs), and observes histograms
(per-experiment seconds) as it runs.  The registry dumps to schema-tagged
JSON (``--metrics-out``), renders as text tables (``repro stats``), and two
dumps diff into a regression report (cache-hit-rate drops, wall-time
growth) — the same discipline the benchmarked tools are held to, applied
to the benchmark itself.

Everything is thread-safe: gauges and histograms serialize under one
registry lock, while counter bumps are lock-free (per-thread cells, summed
at read time) and ``registry.inc("engine.cache.hit")`` skips the
instrument lock once the counter exists — cheap enough for per-unit hot
paths.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsDiff",
    "diff_dumps",
    "METRICS_SCHEMA",
    "DEFAULT_SECONDS_BUCKETS",
]

METRICS_SCHEMA = "repro/metrics@1"

#: Fixed upper bounds (seconds) for timing histograms; a final +inf bucket
#: is implicit.  Fixed buckets keep dumps diffable across runs.
DEFAULT_SECONDS_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Counter:
    """A monotonically increasing count.

    Bumps are lock-free: each thread owns a private one-element list cell
    (registered under the lock on first touch, bumped without it — the
    cell is only ever written by its owning thread, so ``cell[0] +=
    amount`` can never race).  Reads sum the cells, so :attr:`value` is
    exact whenever no increment is mid-flight and never undercounts a
    completed one.
    """

    __slots__ = ("name", "_lock", "_local", "_cells")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._local = threading.local()
        self._cells: list[list[int]] = []

    def _cell(self) -> list[int]:
        cell = [0]
        with self._lock:
            self._cells.append(cell)
        self._local.cell = cell
        return cell

    @property
    def value(self) -> int:
        """The current total across every thread's cell."""
        with self._lock:
            return sum(cell[0] for cell in self._cells)

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0); counters are monotonic."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        try:
            cell = self._local.cell
        except AttributeError:
            cell = self._cell()
        cell[0] += amount


class Gauge:
    """A value that can move both ways (wall seconds, jobs, sizes)."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0.0

    @property
    def value(self) -> float:
        """The last value set."""
        with self._lock:
            return self._value

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        with self._lock:
            self._value = float(value)


class Histogram:
    """Fixed-bucket histogram with count and sum (Prometheus-style)."""

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        if tuple(sorted(buckets)) != tuple(buckets) or not buckets:
            raise ConfigurationError(
                f"histogram {name!r} buckets must be non-empty and ascending"
            )
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = lock
        # One slot per finite bucket plus the +inf overflow slot.
        self._counts = [0] * (len(self.buckets) + 1)
        self._total = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one sample into its bucket."""
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._total += float(value)

    @property
    def count(self) -> int:
        """How many samples were observed."""
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Sum of all observed samples."""
        with self._lock:
            return self._total

    @property
    def counts(self) -> list[int]:
        """Per-bucket counts; the last slot is the +inf overflow."""
        with self._lock:
            return list(self._counts)


class MetricsRegistry:
    """Named counters, gauges, and histograms with a JSON round-trip."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instrument_lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments --------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        with self._instrument_lock:
            if name not in self._counters:
                self._counters[name] = Counter(name, self._lock)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        with self._instrument_lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, self._lock)
            return self._gauges[name]

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS
    ) -> Histogram:
        """The histogram named ``name``, created on first use."""
        with self._instrument_lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, self._lock, buckets)
            return self._histograms[name]

    # -- hot-path conveniences ----------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name``, creating it on first use.

        The lookup skips the instrument lock once the counter exists:
        ``_counters`` is only ever mutated while holding the lock, so a
        bare ``dict.get`` either sees the finished counter or misses and
        takes the locked creation path.
        """
        counter = self._counters.get(name)
        if counter is None:
            counter = self.counter(name)
        counter.inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``, creating it on first use."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record a sample into histogram ``name``, creating it on first use."""
        self.histogram(name).observe(value)

    # -- reading back -------------------------------------------------------
    def counter_values(self, prefix: str = "") -> dict[str, int]:
        """Counter totals, name-sorted, optionally filtered by prefix."""
        with self._instrument_lock:
            names = sorted(n for n in self._counters if n.startswith(prefix))
        return {name: self._counters[name].value for name in names}

    def gauge_values(self, prefix: str = "") -> dict[str, float]:
        """Gauge values, name-sorted, optionally filtered by prefix."""
        with self._instrument_lock:
            names = sorted(n for n in self._gauges if n.startswith(prefix))
        return {name: self._gauges[name].value for name in names}

    def to_dict(self) -> dict[str, Any]:
        """Serialize every instrument under the metrics schema tag."""
        with self._instrument_lock:
            histogram_names = sorted(self._histograms)
            histograms = {name: self._histograms[name] for name in histogram_names}
        return {
            "schema": METRICS_SCHEMA,
            "counters": self.counter_values(),
            "gauges": self.gauge_values(),
            "histograms": {
                name: {
                    "buckets": list(h.buckets),
                    "counts": h.counts,
                    "count": h.count,
                    "total": h.total,
                }
                for name, h in histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a dump, failing loudly on schema drift."""
        found = payload.get("schema")
        if found != METRICS_SCHEMA:
            raise ConfigurationError(
                f"expected schema {METRICS_SCHEMA!r}, found {found!r}"
            )
        registry = cls()
        for name, value in payload.get("counters", {}).items():
            registry.counter(name).inc(int(value))
        for name, value in payload.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, entry in payload.get("histograms", {}).items():
            histogram = registry.histogram(name, tuple(entry["buckets"]))
            with histogram._lock:
                histogram._counts = list(entry["counts"])
                histogram._count = int(entry["count"])
                histogram._total = float(entry["total"])
        return registry

    def merge_dict(self, payload: dict[str, Any]) -> None:
        """Fold another registry's dump into this one, in place.

        Counters add, gauges take the incoming value, histograms add
        bucket-by-bucket (bucket layouts must match).  This is how the
        process executor folds each worker task's metrics into the parent
        run's registry, so ``--metrics-out`` sees one merged picture no
        matter which executor ran the experiments.
        """
        found = payload.get("schema")
        if found != METRICS_SCHEMA:
            raise ConfigurationError(
                f"expected schema {METRICS_SCHEMA!r}, found {found!r}"
            )
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, entry in payload.get("histograms", {}).items():
            buckets = tuple(float(b) for b in entry["buckets"])
            histogram = self.histogram(name, buckets)
            if histogram.buckets != buckets:
                raise ConfigurationError(
                    f"histogram {name!r} bucket mismatch: "
                    f"{histogram.buckets} != {buckets}"
                )
            with histogram._lock:
                for index, count in enumerate(entry["counts"]):
                    histogram._counts[index] += int(count)
                histogram._count += int(entry["count"])
                histogram._total += float(entry["total"])

    def render(self, prefix: str = "") -> str:
        """Human-readable tables, the body of ``repro stats``."""
        from repro.reporting.tables import format_table

        sections = []
        counters = self.counter_values(prefix)
        if counters:
            sections.append(
                format_table(
                    headers=["counter", "value"],
                    rows=[[name, value] for name, value in counters.items()],
                    title="Counters",
                )
            )
        gauges = self.gauge_values(prefix)
        if gauges:
            sections.append(
                format_table(
                    headers=["gauge", "value"],
                    rows=[[name, value] for name, value in gauges.items()],
                    title="Gauges",
                )
            )
        with self._instrument_lock:
            histogram_names = sorted(
                n for n in self._histograms if n.startswith(prefix)
            )
            histograms = {n: self._histograms[n] for n in histogram_names}
        if histograms:
            sections.append(
                format_table(
                    headers=["histogram", "count", "total", "mean"],
                    rows=[
                        [
                            name,
                            h.count,
                            round(h.total, 4),
                            round(h.total / h.count, 4) if h.count else float("nan"),
                        ]
                        for name, h in histograms.items()
                    ],
                    title="Histograms",
                )
            )
        if not sections:
            return "(no metrics recorded)"
        return "\n\n".join(sections)


# ---------------------------------------------------------------------------
# Diffing two dumps (the regression-tracking example builds on this)
# ---------------------------------------------------------------------------
def _cache_hit_rate(counters: dict[str, int]) -> float | None:
    hits = counters.get("engine.cache.hit", 0) + counters.get(
        "engine.cache.disk_hit", 0
    )
    total = hits + counters.get("engine.cache.miss", 0)
    return hits / total if total else None


@dataclass(frozen=True)
class MetricsDiff:
    """Comparison of two metrics dumps from the same kind of run."""

    counter_deltas: dict[str, tuple[int, int]]
    """``{name: (before, after)}`` for counters whose value changed."""
    hit_rate_before: float | None
    hit_rate_after: float | None
    wall_before: float | None
    wall_after: float | None
    regressions: tuple[str, ...]
    """Human-readable findings; empty means no regression flagged."""

    def render(self) -> str:
        """A before/after counter table plus any flagged regressions."""
        from repro.reporting.tables import format_table

        rows = [
            [name, before, after, after - before]
            for name, (before, after) in sorted(self.counter_deltas.items())
        ]
        parts = []
        if rows:
            parts.append(
                format_table(
                    headers=["counter", "before", "after", "delta"],
                    rows=rows,
                    title="Changed counters",
                )
            )
        else:
            parts.append("No counter changed between the two runs.")
        if self.regressions:
            parts.append(
                "REGRESSIONS FLAGGED:\n"
                + "\n".join(f"  - {finding}" for finding in self.regressions)
            )
        else:
            parts.append("No cache-hit-rate or wall-time regression flagged.")
        return "\n\n".join(parts)


def diff_dumps(
    before: dict[str, Any],
    after: dict[str, Any],
    hit_rate_drop: float = 0.01,
    wall_growth: float = 0.10,
) -> MetricsDiff:
    """Diff two ``--metrics-out`` dumps and flag regressions.

    A regression is a cache hit rate that dropped by more than
    ``hit_rate_drop`` (absolute) or a wall-time gauge that grew by more than
    ``wall_growth`` (relative) between ``before`` and ``after``.
    """
    for payload in (before, after):
        found = payload.get("schema")
        if found != METRICS_SCHEMA:
            raise ConfigurationError(
                f"expected schema {METRICS_SCHEMA!r}, found {found!r}"
            )
    counters_before = before.get("counters", {})
    counters_after = after.get("counters", {})
    deltas = {
        name: (counters_before.get(name, 0), counters_after.get(name, 0))
        for name in sorted(set(counters_before) | set(counters_after))
        if counters_before.get(name, 0) != counters_after.get(name, 0)
    }
    rate_before = _cache_hit_rate(counters_before)
    rate_after = _cache_hit_rate(counters_after)
    wall_before = before.get("gauges", {}).get("engine.wall_seconds")
    wall_after = after.get("gauges", {}).get("engine.wall_seconds")

    regressions = []
    if (
        rate_before is not None
        and rate_after is not None
        and rate_before - rate_after > hit_rate_drop
    ):
        regressions.append(
            f"cache hit rate dropped {rate_before:.1%} -> {rate_after:.1%}"
        )
    if (
        wall_before is not None
        and wall_after is not None
        and wall_before > 0
        and (wall_after - wall_before) / wall_before > wall_growth
    ):
        regressions.append(
            f"wall time grew {wall_before:.2f}s -> {wall_after:.2f}s "
            f"(+{(wall_after - wall_before) / wall_before:.0%}, "
            f"threshold {wall_growth:.0%})"
        )
    return MetricsDiff(
        counter_deltas=deltas,
        hit_rate_before=rate_before,
        hit_rate_after=rate_after,
        wall_before=wall_before,
        wall_after=wall_after,
        regressions=tuple(regressions),
    )

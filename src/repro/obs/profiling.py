"""Opt-in cProfile hooks: per-experiment ``.pstats`` plus a hotspot table.

``--profile`` wraps each experiment's execution in :mod:`cProfile`,
persists the raw profile as ``<id>.pstats`` (loadable with
``python -m pstats`` or snakeviz), and keeps the top-N functions by
cumulative time so the engine can print one consolidated hotspot table at
the end of the run.  CPython profilers attach per thread, so profiling
composes with ``--jobs N``: each worker profiles only the experiment it is
executing.
"""

from __future__ import annotations

import cProfile
import pstats
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

__all__ = ["HotspotRow", "ProfileReport", "Profiler"]


@dataclass(frozen=True)
class HotspotRow:
    """One function in a profile's top-N by cumulative time."""

    location: str
    """``file:line(function)`` with the path shortened to its tail."""
    calls: int
    cumulative_seconds: float
    own_seconds: float


@dataclass(frozen=True)
class ProfileReport:
    """One profiled experiment: where its raw stats live plus the top-N."""

    name: str
    pstats_path: Path
    hotspots: tuple[HotspotRow, ...]


def _short_location(func: tuple[str, int, str]) -> str:
    filename, line, name = func
    if filename == "~":  # builtins render as ~:0(<built-in ...>)
        return name
    tail = "/".join(Path(filename).parts[-2:])
    return f"{tail}:{line}({name})"


class Profiler:
    """Collects per-experiment cProfile runs under one output directory."""

    def __init__(self, out_dir: str | Path, top_n: int = 15) -> None:
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.top_n = top_n
        self._reports: list[ProfileReport] = []
        self._lock = threading.Lock()

    @contextmanager
    def profile(self, name: str) -> Iterator[None]:
        """Profile the block, writing ``<name>.pstats`` into ``out_dir``."""
        profile = cProfile.Profile()
        profile.enable()
        try:
            yield
        finally:
            profile.disable()
            path = self.out_dir / f"{name.lower()}.pstats"
            profile.dump_stats(path)
            stats = pstats.Stats(profile)
            ranked = sorted(
                stats.stats.items(), key=lambda item: item[1][3], reverse=True
            )
            hotspots = tuple(
                HotspotRow(
                    location=_short_location(func),
                    calls=nc,
                    cumulative_seconds=ct,
                    own_seconds=tt,
                )
                for func, (cc, nc, tt, ct, callers) in ranked[: self.top_n]
            )
            report = ProfileReport(name=name, pstats_path=path, hotspots=hotspots)
            with self._lock:
                self._reports.append(report)

    @property
    def reports(self) -> list[ProfileReport]:
        """Every captured profile, name-sorted."""
        with self._lock:
            return sorted(self._reports, key=lambda r: r.name)

    def hotspot_table(self) -> str:
        """The consolidated top-N table across every profiled experiment."""
        from repro.reporting.tables import format_table

        reports = self.reports
        if not reports:
            return "(nothing profiled)"
        sections = []
        for report in reports:
            sections.append(
                format_table(
                    headers=["function", "calls", "cumulative s", "own s"],
                    rows=[
                        [
                            row.location,
                            row.calls,
                            round(row.cumulative_seconds, 4),
                            round(row.own_seconds, 4),
                        ]
                        for row in report.hotspots
                    ],
                    title=f"Hotspots — {report.name} ({report.pstats_path.name})",
                )
            )
        return "\n\n".join(sections)

    def write_hotspots(self, path: str | Path | None = None) -> Path:
        """Write the hotspot table next to the ``.pstats`` files."""
        target = Path(path) if path is not None else self.out_dir / "hotspots.txt"
        target.write_text(self.hotspot_table() + "\n", encoding="utf-8")
        return target

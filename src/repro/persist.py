"""JSON persistence for benchmark artifacts.

Campaigns are expensive relative to analyses: a benchmark operator runs the
tools once and then re-analyzes (new metrics, new scenarios, new statistics)
many times.  This module round-trips the three artifacts worth archiving —
workloads, detection reports and scored campaigns — through plain JSON with
an explicit schema tag, so archives fail loudly rather than misparse when
the format evolves.

Durability: every write goes through :func:`save_json`, which serializes in
memory, writes a sibling temp file and atomically :func:`os.replace`\\ s it
into place — an interrupted write can never leave truncated JSON at the
final path.  The artifact store's disk tier additionally wraps payloads in
a sha256-digest envelope (:func:`save_cache_entry` /
:func:`load_cache_entry`) so silently corrupted bytes are detected on load
and quarantined instead of poisoning warm runs.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro.bench.campaign import CampaignResult, ToolResult
from repro.bench.result import ExperimentResult
from repro.bench.streaming import ShardCells, StreamingCampaignResult
from repro.errors import ArtifactCorruptError, ConfigurationError, PersistError
from repro.metrics.confusion import ConfusionMatrix
from repro.tools.base import Detection, DetectionReport
from repro.workload.code_model import CodeUnit, SinkSite, Statement, StatementKind
from repro.workload.generator import SiteProfile, Workload, WorkloadConfig
from repro.workload.ground_truth import GroundTruth
from repro.workload.taxonomy import VulnerabilityType

__all__ = [
    "workload_to_dict",
    "workload_from_dict",
    "report_to_dict",
    "report_from_dict",
    "campaign_to_dict",
    "campaign_from_dict",
    "experiment_result_to_dict",
    "experiment_result_from_dict",
    "shard_cells_to_dict",
    "shard_cells_from_dict",
    "shard_cells_from_array",
    "streaming_totals_to_dict",
    "streaming_totals_from_dict",
    "save_json",
    "load_json",
    "payload_digest",
    "save_cache_entry",
    "load_cache_entry",
    "sniff_schema",
    "CACHE_ENTRY_SCHEMA",
    "WAL_MAGIC",
    "WAL_SCHEMA",
    "SERVE_JOB_SCHEMA",
    "SERVE_RESULT_SCHEMA",
]

#: The shard write-ahead journal's file magic and schema tag.  They live
#: here (not in :mod:`repro.bench.engine.wal`) so low-level schema
#: sniffing never has to import engine code.
WAL_MAGIC = b"RWAL1\n"
WAL_SCHEMA = "repro/shard-wal@1"

#: The campaign service's persisted job records and result payloads
#: (:mod:`repro.serve`).  Like :data:`WAL_SCHEMA`, the tags live here so
#: schema sniffing and tooling never import service code.
SERVE_JOB_SCHEMA = "repro/serve-job@1"
SERVE_RESULT_SCHEMA = "repro/serve-result@1"

_WORKLOAD_SCHEMA = "repro/workload@1"
_REPORT_SCHEMA = "repro/report@1"
_CAMPAIGN_SCHEMA = "repro/campaign@1"
_EXPERIMENT_SCHEMA = "repro/experiment@1"
_SHARD_CELLS_SCHEMA = "repro/shard-cells@1"


def _require_schema(payload: dict[str, Any], expected: str) -> None:
    found = payload.get("schema")
    if found != expected:
        raise ConfigurationError(
            f"expected schema {expected!r}, found {found!r}"
        )


# ---------------------------------------------------------------------------
# Sites / statements
# ---------------------------------------------------------------------------
def _site_to_dict(site: SinkSite) -> dict[str, Any]:
    return {
        "unit_id": site.unit_id,
        "statement_index": site.statement_index,
        "vuln_type": site.vuln_type.value,
    }


def _site_from_dict(payload: dict[str, Any]) -> SinkSite:
    return SinkSite(
        unit_id=payload["unit_id"],
        statement_index=payload["statement_index"],
        vuln_type=VulnerabilityType(payload["vuln_type"]),
    )


def _statement_to_dict(statement: Statement) -> dict[str, Any]:
    return {
        "kind": statement.kind.value,
        "target": statement.target,
        "sources": list(statement.sources),
        "vuln_type": statement.vuln_type.value if statement.vuln_type else None,
    }


def _statement_from_dict(payload: dict[str, Any]) -> Statement:
    return Statement(
        kind=StatementKind(payload["kind"]),
        target=payload["target"],
        sources=tuple(payload["sources"]),
        vuln_type=(
            VulnerabilityType(payload["vuln_type"]) if payload["vuln_type"] else None
        ),
    )


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------
def workload_to_dict(workload: Workload) -> dict[str, Any]:
    """Serialize a workload (units, truth, profiles, config)."""
    config = workload.config
    return {
        "schema": _WORKLOAD_SCHEMA,
        "name": workload.name,
        "config": {
            "n_units": config.n_units,
            "sites_per_unit": list(config.sites_per_unit),
            "prevalence": config.prevalence,
            "decoy_fraction": config.decoy_fraction,
            "chain_length_range": list(config.chain_length_range),
            "cross_class_sanitizer_rate": config.cross_class_sanitizer_rate,
            "type_mix": {t.value: w for t, w in config.type_mix.items()},
            "seed": config.seed,
            "name": config.name,
            "ecosystem": config.ecosystem,
        },
        "units": [
            {
                "unit_id": unit.unit_id,
                "statements": [_statement_to_dict(s) for s in unit.statements],
            }
            for unit in workload.units
        ],
        "sites": [_site_to_dict(site) for site in workload.truth.sites],
        "vulnerable": [
            _site_to_dict(site) for site in sorted(workload.truth.vulnerable)
        ],
        "profiles": [
            {
                "site": _site_to_dict(site),
                "vuln_type": profile.vuln_type.value,
                "vulnerable": profile.vulnerable,
                "chain_length": profile.chain_length,
                "sanitizer_present": profile.sanitizer_present,
                "cross_class_sanitizer": profile.cross_class_sanitizer,
                "difficulty": profile.difficulty,
            }
            for site, profile in sorted(workload.profiles.items())
        ],
    }


def workload_from_dict(payload: dict[str, Any]) -> Workload:
    """Rebuild a workload; validation re-runs on every component."""
    _require_schema(payload, _WORKLOAD_SCHEMA)
    config_data = payload["config"]
    config = WorkloadConfig(
        n_units=config_data["n_units"],
        sites_per_unit=tuple(config_data["sites_per_unit"]),
        prevalence=config_data["prevalence"],
        decoy_fraction=config_data["decoy_fraction"],
        chain_length_range=tuple(config_data["chain_length_range"]),
        cross_class_sanitizer_rate=config_data["cross_class_sanitizer_rate"],
        type_mix={
            VulnerabilityType(key): weight
            for key, weight in config_data["type_mix"].items()
        },
        seed=config_data["seed"],
        name=config_data["name"],
        ecosystem=config_data.get("ecosystem", "web-services"),
    )
    units = tuple(
        CodeUnit(
            unit_id=unit["unit_id"],
            statements=tuple(_statement_from_dict(s) for s in unit["statements"]),
        )
        for unit in payload["units"]
    )
    truth = GroundTruth.from_sites(
        (_site_from_dict(s) for s in payload["sites"]),
        (_site_from_dict(s) for s in payload["vulnerable"]),
    )
    profiles = {
        _site_from_dict(entry["site"]): SiteProfile(
            vuln_type=VulnerabilityType(entry["vuln_type"]),
            vulnerable=entry["vulnerable"],
            chain_length=entry["chain_length"],
            sanitizer_present=entry["sanitizer_present"],
            cross_class_sanitizer=entry["cross_class_sanitizer"],
            difficulty=entry["difficulty"],
        )
        for entry in payload["profiles"]
    }
    return Workload(
        name=payload["name"],
        units=units,
        truth=truth,
        profiles=profiles,
        config=config,
    )


# ---------------------------------------------------------------------------
# Reports / campaigns
# ---------------------------------------------------------------------------
def report_to_dict(report: DetectionReport) -> dict[str, Any]:
    """Serialize a detection report."""
    return {
        "schema": _REPORT_SCHEMA,
        "tool_name": report.tool_name,
        "workload_name": report.workload_name,
        "detections": [
            {"site": _site_to_dict(d.site), "confidence": d.confidence}
            for d in report.detections
        ],
    }


def report_from_dict(payload: dict[str, Any]) -> DetectionReport:
    """Rebuild a detection report."""
    _require_schema(payload, _REPORT_SCHEMA)
    return DetectionReport(
        tool_name=payload["tool_name"],
        workload_name=payload["workload_name"],
        detections=tuple(
            Detection(
                site=_site_from_dict(entry["site"]), confidence=entry["confidence"]
            )
            for entry in payload["detections"]
        ),
    )


def campaign_to_dict(campaign: CampaignResult) -> dict[str, Any]:
    """Serialize a scored campaign (reports + confusion matrices)."""
    return {
        "schema": _CAMPAIGN_SCHEMA,
        "workload_name": campaign.workload_name,
        "ecosystem": campaign.ecosystem,
        "results": [
            {
                "tool_name": result.tool_name,
                "report": report_to_dict(result.report),
                "confusion": {
                    "tp": result.confusion.tp,
                    "fp": result.confusion.fp,
                    "fn": result.confusion.fn,
                    "tn": result.confusion.tn,
                },
            }
            for result in campaign.results
        ],
    }


def campaign_from_dict(payload: dict[str, Any]) -> CampaignResult:
    """Rebuild a scored campaign."""
    _require_schema(payload, _CAMPAIGN_SCHEMA)
    results = tuple(
        ToolResult(
            tool_name=entry["tool_name"],
            report=report_from_dict(entry["report"]),
            confusion=ConfusionMatrix(**entry["confusion"]),
        )
        for entry in payload["results"]
    )
    return CampaignResult(
        workload_name=payload["workload_name"],
        results=results,
        ecosystem=payload.get("ecosystem", "web-services"),
    )


# ---------------------------------------------------------------------------
# Experiment results
# ---------------------------------------------------------------------------
def _is_json_safe(value: Any) -> bool:
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, list):
        return all(_is_json_safe(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _is_json_safe(item)
            for key, item in value.items()
        )
    return False


def experiment_result_to_dict(
    result: ExperimentResult, strict: bool = True
) -> dict[str, Any]:
    """Serialize an experiment result (rendered sections + JSON-safe data).

    ``data`` values that do not survive a JSON round-trip exactly (objects,
    tuples, non-string dict keys) are rejected when ``strict`` — archiving
    should fail loudly, not silently drop payload — or recorded under
    ``omitted_data_keys`` when ``strict=False``.
    """
    data: dict[str, Any] = {}
    omitted: list[str] = []
    for key, value in result.data.items():
        if _is_json_safe(value):
            data[key] = value
        elif strict:
            raise ConfigurationError(
                f"experiment {result.experiment_id}: data[{key!r}] is not "
                f"JSON-safe ({type(value).__name__}); pass strict=False to "
                f"omit such keys"
            )
        else:
            omitted.append(key)
    return {
        "schema": _EXPERIMENT_SCHEMA,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "sections": dict(result.sections),
        "data": data,
        "omitted_data_keys": omitted,
    }


def experiment_result_from_dict(payload: dict[str, Any]) -> ExperimentResult:
    """Rebuild an experiment result (omitted data keys stay absent)."""
    _require_schema(payload, _EXPERIMENT_SCHEMA)
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        sections=dict(payload["sections"]),
        data=dict(payload["data"]),
    )


# ---------------------------------------------------------------------------
# Shard cells (the streaming campaign's cacheable unit)
# ---------------------------------------------------------------------------
def shard_cells_to_dict(cells: ShardCells) -> dict[str, Any]:
    """Serialize one shard's per-tool confusion cells."""
    return {
        "schema": _SHARD_CELLS_SCHEMA,
        "shard_index": cells.shard_index,
        "tool_names": list(cells.tool_names),
        "tp": list(cells.tp),
        "fp": list(cells.fp),
        "fn": list(cells.fn),
        "tn": list(cells.tn),
        "n_units": cells.n_units,
        "n_sites": cells.n_sites,
        "n_vulnerable": cells.n_vulnerable,
        "ecosystem": cells.ecosystem,
    }


def shard_cells_from_dict(payload: dict[str, Any]) -> ShardCells:
    """Rebuild shard cells; consistency validation re-runs on construction."""
    _require_schema(payload, _SHARD_CELLS_SCHEMA)
    return ShardCells(
        shard_index=payload["shard_index"],
        tool_names=tuple(payload["tool_names"]),
        tp=tuple(payload["tp"]),
        fp=tuple(payload["fp"]),
        fn=tuple(payload["fn"]),
        tn=tuple(payload["tn"]),
        n_units=payload["n_units"],
        n_sites=payload["n_sites"],
        n_vulnerable=payload["n_vulnerable"],
        ecosystem=payload.get("ecosystem", "web-services"),
    )


def shard_cells_from_array(
    array: Any, tool_names: Sequence[str], ecosystem: str = "web-services"
) -> ShardCells:
    """Rebuild shard cells from the flat int64 wire layout.

    The buffer-backed counterpart of :func:`shard_cells_from_dict` for the
    shared-memory transport: the array carries only the numbers (see
    :meth:`ShardCells.to_array` for the layout), so the caller supplies the
    campaign context the wire format deliberately omits.
    """
    return ShardCells.from_array(array, tool_names, ecosystem=ecosystem)


# ---------------------------------------------------------------------------
# Streaming campaign totals (what the service hands back for a finished job)
# ---------------------------------------------------------------------------
def streaming_totals_to_dict(totals: StreamingCampaignResult) -> dict[str, Any]:
    """Serialize corpus-wide streaming totals (per-tool confusion cells).

    Cells are serialized as exact integers — the accumulator's float64
    totals are integral by the exactness contract — so two runs that fold
    the same shards produce byte-identical JSON regardless of fold order.
    """
    return {
        "schema": SERVE_RESULT_SCHEMA,
        "tool_names": list(totals.tool_names),
        "cells": [
            {"tp": int(cm.tp), "fp": int(cm.fp), "fn": int(cm.fn), "tn": int(cm.tn)}
            for cm in totals.confusions
        ],
        "n_units": totals.n_units,
        "n_sites": totals.n_sites,
        "n_vulnerable": totals.n_vulnerable,
        "shard_indices": sorted(totals.shard_indices),
        "ecosystem": totals.ecosystem,
    }


def streaming_totals_from_dict(payload: dict[str, Any]) -> StreamingCampaignResult:
    """Rebuild streaming totals written by :func:`streaming_totals_to_dict`."""
    _require_schema(payload, SERVE_RESULT_SCHEMA)
    return StreamingCampaignResult(
        tool_names=tuple(payload["tool_names"]),
        confusions=tuple(
            ConfusionMatrix(
                tp=float(cm["tp"]),
                fp=float(cm["fp"]),
                fn=float(cm["fn"]),
                tn=float(cm["tn"]),
            )
            for cm in payload["cells"]
        ),
        n_units=payload["n_units"],
        n_sites=payload["n_sites"],
        n_vulnerable=payload["n_vulnerable"],
        shard_indices=tuple(payload["shard_indices"]),
        ecosystem=payload.get("ecosystem", "web-services"),
    )


# ---------------------------------------------------------------------------
# Files
# ---------------------------------------------------------------------------
def save_json(payload: dict[str, Any], path: str | Path) -> None:
    """Atomically write a serialized artifact to ``path`` (stable key order).

    The payload is serialized in memory first, written to a sibling
    temporary file, and moved into place with :func:`os.replace` — so a
    crash (or a serialization error) mid-write can never leave a partial
    file at the final path: readers see either the old content or the new
    content, never truncated JSON.
    """
    path = Path(path)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a serialized artifact from ``path``.

    Truncated or garbage files raise :class:`~repro.errors.PersistError`
    (carrying the path) instead of leaking a raw ``JSONDecodeError``.
    """
    path = Path(path)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise PersistError(
            f"corrupt JSON in {path}: {error}", path=str(path)
        ) from error


def sniff_schema(path: str | Path) -> str | None:
    """Best-effort schema tag of a persisted file, without full parsing.

    The CLI's ``--resume`` accepts both JSON manifests and the binary
    shard journal; this answers "which kind is it" from the first bytes
    (:data:`WAL_MAGIC`) or the JSON ``schema`` key, returning ``None``
    for unreadable/untagged files so callers fall back to their default
    interpretation.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(WAL_MAGIC))
    except OSError:
        return None
    if head == WAL_MAGIC:
        return WAL_SCHEMA
    try:
        payload = load_json(path)
    except PersistError:
        return None
    schema = payload.get("schema") if isinstance(payload, dict) else None
    return schema if isinstance(schema, str) else None


# ---------------------------------------------------------------------------
# Integrity-checked cache entries (the artifact store's disk tier)
# ---------------------------------------------------------------------------
CACHE_ENTRY_SCHEMA = "repro/cache-entry@1"


def payload_digest(payload: dict[str, Any]) -> str:
    """The sha256 hex digest of ``payload``'s canonical JSON form."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save_cache_entry(payload: dict[str, Any], path: str | Path) -> None:
    """Atomically write ``payload`` wrapped in a digest-bearing envelope.

    The envelope records the sha256 of the payload's canonical JSON, so a
    reader can detect silent corruption (bit flips, partial copies, manual
    edits) that still happens to parse as JSON.
    """
    save_json(
        {
            "schema": CACHE_ENTRY_SCHEMA,
            "sha256": payload_digest(payload),
            "payload": payload,
        },
        path,
    )


def load_cache_entry(path: str | Path) -> dict[str, Any]:
    """Read an envelope written by :func:`save_cache_entry`; verify digest.

    Raises :class:`~repro.errors.PersistError` for unreadable JSON and
    :class:`~repro.errors.ArtifactCorruptError` when the envelope is not a
    cache entry or the embedded digest does not match the payload.
    """
    envelope = load_json(path)
    found = envelope.get("schema") if isinstance(envelope, dict) else None
    if found != CACHE_ENTRY_SCHEMA:
        raise ArtifactCorruptError(
            f"{path}: expected cache envelope {CACHE_ENTRY_SCHEMA!r}, "
            f"found {found!r}",
            path=str(path),
        )
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise ArtifactCorruptError(
            f"{path}: cache envelope has no payload object", path=str(path)
        )
    expected = envelope.get("sha256")
    actual = payload_digest(payload)
    if expected != actual:
        raise ArtifactCorruptError(
            f"{path}: payload digest mismatch (recorded {expected!r}, "
            f"computed {actual!r})",
            path=str(path),
        )
    return payload

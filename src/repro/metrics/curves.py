"""Threshold-free ranking metrics: ROC and precision-recall analysis.

Fixed-threshold metrics judge a tool's *report*; ranking metrics judge its
*confidence ordering* — how well the tool separates vulnerable from safe
sites before any cut-off is chosen.  AUC-ROC and average precision are the
"seldom used in benchmarking" candidates from this family: they sidestep the
threshold choice entirely, at the price of requiring tools to expose
confidences and readers to understand ranking semantics.

Scoring convention: every analysis site gets the confidence the tool
attached to it, and sites the tool did not flag score 0 (below every real
report).  Ties move between confusion cells together, which produces the
standard tie-aware ROC (diagonal segments) and matches the probabilistic
interpretation of AUC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tools.base import DetectionReport
from repro.workload.ground_truth import GroundTruth

__all__ = [
    "ScoredSite",
    "score_sites",
    "roc_points",
    "auc_roc",
    "pr_points",
    "average_precision",
]


@dataclass(frozen=True, slots=True)
class ScoredSite:
    """One analysis site with the tool's confidence and the oracle verdict."""

    score: float
    vulnerable: bool


def score_sites(report: DetectionReport, truth: GroundTruth) -> list[ScoredSite]:
    """Attach tool confidences to every site of the workload.

    Unflagged sites score 0.  Reported sites absent from the workload are a
    tool bug and raise, mirroring :func:`repro.bench.campaign.score_report`.
    """
    confidence = {d.site: d.confidence for d in report.detections}
    site_set = set(truth.sites)
    unknown = set(confidence) - site_set
    if unknown:
        raise ConfigurationError(
            f"tool {report.tool_name!r} scored sites absent from the workload: "
            f"{sorted(unknown)[:3]}"
        )
    return [
        ScoredSite(score=confidence.get(site, 0.0), vulnerable=site in truth.vulnerable)
        for site in truth.sites
    ]


def _grouped_by_score(sites: list[ScoredSite]) -> list[tuple[float, int, int]]:
    """(score, positives, negatives) per distinct score, descending."""
    tally: dict[float, list[int]] = {}
    for site in sites:
        bucket = tally.setdefault(site.score, [0, 0])
        bucket[0 if site.vulnerable else 1] += 1
    return [
        (score, positives, negatives)
        for score, (positives, negatives) in sorted(tally.items(), reverse=True)
    ]


def roc_points(sites: list[ScoredSite]) -> list[tuple[float, float]]:
    """The ROC curve as (FPR, TPR) points, from (0, 0) to (1, 1).

    One point per distinct confidence threshold; tied sites enter together,
    so ties appear as diagonal segments.
    """
    if not sites:
        raise ConfigurationError("no sites to rank")
    total_positives = sum(1 for s in sites if s.vulnerable)
    total_negatives = len(sites) - total_positives
    if total_positives == 0 or total_negatives == 0:
        raise ConfigurationError(
            "ROC analysis needs both vulnerable and safe sites"
        )
    points = [(0.0, 0.0)]
    tp = fp = 0
    for _, positives, negatives in _grouped_by_score(sites):
        tp += positives
        fp += negatives
        points.append((fp / total_negatives, tp / total_positives))
    return points


def auc_roc(sites: list[ScoredSite]) -> float:
    """Area under the ROC curve (trapezoidal, tie-aware).

    Equals the probability that a uniformly random vulnerable site is
    scored above a uniformly random safe one (ties counted half) — the
    Mann-Whitney interpretation, asserted by the test suite.
    """
    points = roc_points(sites)
    area = 0.0
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        area += (x1 - x0) * (y0 + y1) / 2.0
    return area


def pr_points(sites: list[ScoredSite]) -> list[tuple[float, float]]:
    """The precision-recall curve as (recall, precision) points.

    One point per distinct threshold, recall-ascending.  The implicit
    starting point at recall 0 is not emitted (its precision is undefined).
    """
    if not sites:
        raise ConfigurationError("no sites to rank")
    total_positives = sum(1 for s in sites if s.vulnerable)
    if total_positives == 0:
        raise ConfigurationError("PR analysis needs at least one vulnerable site")
    points = []
    tp = fp = 0
    for _, positives, negatives in _grouped_by_score(sites):
        tp += positives
        fp += negatives
        points.append((tp / total_positives, tp / (tp + fp)))
    return points


def average_precision(sites: list[ScoredSite]) -> float:
    """Average precision: precision integrated over recall steps.

    The step-wise AP used by retrieval benchmarks: each threshold's
    precision is weighted by the recall it adds.
    """
    points = pr_points(sites)
    ap = 0.0
    previous_recall = 0.0
    for recall, precision in points:
        ap += (recall - previous_recall) * precision
        previous_recall = recall
    return ap

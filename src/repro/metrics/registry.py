"""Metric registry.

The studies iterate over "all candidate metrics" in several places (catalog
table, properties matrix, scenario adequacy, MCDA alternatives).  The
registry gives them a single, ordered, name-addressable collection, and lets
users add their own candidates without touching library code.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.metrics import definitions
from repro.metrics.base import Metric, MetricFamily

__all__ = ["MetricRegistry", "default_registry", "core_candidates"]


class MetricRegistry:
    """Ordered, name-addressable collection of :class:`Metric` instances."""

    def __init__(self, metrics: Sequence[Metric] = ()) -> None:
        self._metrics: dict[str, Metric] = {}
        for metric in metrics:
            self.register(metric)

    def register(self, metric: Metric) -> None:
        """Add ``metric``; symbols must be unique within a registry."""
        symbol = metric.symbol
        if symbol in self._metrics:
            raise ConfigurationError(f"metric symbol {symbol!r} already registered")
        self._metrics[symbol] = metric

    def get(self, symbol: str) -> Metric:
        """Return the metric registered under ``symbol``."""
        try:
            return self._metrics[symbol]
        except KeyError:
            raise ConfigurationError(
                f"unknown metric {symbol!r}; known: {sorted(self._metrics)}"
            ) from None

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    @property
    def symbols(self) -> list[str]:
        """Registration-ordered metric symbols."""
        return list(self._metrics)

    def by_family(self, family: MetricFamily) -> list[Metric]:
        """All registered metrics belonging to ``family``."""
        return [m for m in self._metrics.values() if m.info.family is family]

    def subset(self, symbols: Sequence[str]) -> "MetricRegistry":
        """A new registry containing only ``symbols``, in the given order."""
        return MetricRegistry([self.get(symbol) for symbol in symbols])


def default_registry() -> MetricRegistry:
    """The full candidate set gathered for the study (experiment R1)."""
    return MetricRegistry(
        [
            definitions.RECALL,
            definitions.SPECIFICITY,
            definitions.PRECISION,
            definitions.NPV,
            definitions.ACCURACY,
            definitions.ERROR_RATE,
            definitions.BALANCED_ACCURACY,
            definitions.F1,
            definitions.F2,
            definitions.F05,
            definitions.MCC,
            definitions.INFORMEDNESS,
            definitions.MARKEDNESS,
            definitions.G_MEAN,
            definitions.FOWLKES_MALLOWS,
            definitions.JACCARD,
            definitions.KAPPA,
            definitions.DOR,
            definitions.LR_POSITIVE,
            definitions.LR_NEGATIVE,
            definitions.FPR,
            definitions.FNR,
            definitions.FDR,
            definitions.FOR,
            definitions.PREVALENCE_THRESHOLD,
            definitions.LIFT,
        ]
    )


def core_candidates() -> MetricRegistry:
    """The short list that survives the R2 properties screening.

    These are the metrics the scenario analysis and the MCDA validation rank:
    bounded, defined almost everywhere, and covering the sensitivity /
    exactness / composite space the scenarios care about.  The likelihood
    ratios and DOR are screened out for unboundedness and frequent
    undefinedness; the redundant complements (ERR, FDR, FNR, FOR) are
    represented by their primal forms.
    """
    return MetricRegistry(
        [
            definitions.RECALL,
            definitions.PRECISION,
            definitions.SPECIFICITY,
            definitions.ACCURACY,
            definitions.BALANCED_ACCURACY,
            definitions.F1,
            definitions.F2,
            definitions.F05,
            definitions.MCC,
            definitions.INFORMEDNESS,
            definitions.MARKEDNESS,
            definitions.G_MEAN,
            definitions.JACCARD,
            definitions.KAPPA,
        ]
    )

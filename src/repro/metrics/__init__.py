"""Candidate metrics for benchmarking vulnerability detection tools.

Public surface:

- :class:`ConfusionMatrix` — the raw benchmark outcome.
- :class:`ConfusionBatch` — ``n`` matrices as columns, for vectorized kernels.
- :class:`Metric` and its catalog in :mod:`repro.metrics.definitions`.
- :class:`MetricRegistry`, :func:`default_registry`, :func:`core_candidates`.
"""

from repro.metrics import curves, definitions
from repro.metrics.base import Metric, MetricFamily, MetricInfo, Orientation
from repro.metrics.batch import ConfusionBatch, safe_div_array
from repro.metrics.confusion import ConfusionMatrix
from repro.metrics.registry import MetricRegistry, core_candidates, default_registry

__all__ = [
    "ConfusionMatrix",
    "ConfusionBatch",
    "safe_div_array",
    "Metric",
    "MetricFamily",
    "MetricInfo",
    "Orientation",
    "MetricRegistry",
    "default_registry",
    "core_candidates",
    "definitions",
    "curves",
]

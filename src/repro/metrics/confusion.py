"""The confusion matrix — the raw material of every candidate metric.

A vulnerability detection benchmark runs a tool over a workload whose ground
truth is known and classifies every *analysis site* (a potentially vulnerable
location, e.g. a sink in a code unit) into one of four buckets:

===============  ====================================================
``tp``           vulnerable site correctly reported by the tool
``fp``           safe site wrongly reported (false alarm)
``fn``           vulnerable site the tool missed
``tn``           safe site the tool correctly stayed silent about
===============  ====================================================

Every metric studied in the paper is a function of these four counts, so the
:class:`ConfusionMatrix` is the single interchange type between the workload
/tool layer and the metrics layer.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro._rng import rng_from_seed
from repro.errors import ConfigurationError

__all__ = ["ConfusionMatrix"]


@dataclass(frozen=True, slots=True)
class ConfusionMatrix:
    """Immutable 2x2 confusion matrix over analysis sites.

    Counts are non-negative integers (floats are accepted for *expected*
    matrices produced analytically, e.g. when sweeping prevalence, and are
    validated to be non-negative).
    """

    tp: float
    fp: float
    fn: float
    tn: float

    def __post_init__(self) -> None:
        for field in ("tp", "fp", "fn", "tn"):
            value = getattr(self, field)
            if not np.isfinite(value) or value < 0:
                raise ConfigurationError(
                    f"confusion matrix count {field}={value!r} must be finite and >= 0"
                )
        if self.total == 0:
            raise ConfigurationError("confusion matrix must contain at least one site")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_outcomes(
        cls, truth: Sequence[bool] | Iterable[bool], predicted: Sequence[bool] | Iterable[bool]
    ) -> "ConfusionMatrix":
        """Build a matrix from aligned per-site ground truth and predictions."""
        truth = list(truth)
        predicted = list(predicted)
        if len(truth) != len(predicted):
            raise ConfigurationError(
                f"truth ({len(truth)}) and predicted ({len(predicted)}) differ in length"
            )
        tp = sum(1 for t, p in zip(truth, predicted) if t and p)
        fp = sum(1 for t, p in zip(truth, predicted) if not t and p)
        fn = sum(1 for t, p in zip(truth, predicted) if t and not p)
        tn = sum(1 for t, p in zip(truth, predicted) if not t and not p)
        return cls(tp=tp, fp=fp, fn=fn, tn=tn)

    @classmethod
    def from_rates(
        cls, tpr: float, fpr: float, positives: float, negatives: float
    ) -> "ConfusionMatrix":
        """Build the *expected* matrix of a tool with the given operating point.

        ``tpr`` is the true-positive rate (recall), ``fpr`` the false-positive
        rate, applied to ``positives`` vulnerable and ``negatives`` safe
        sites.  Used by analytical studies (prevalence sweeps, property
        checks) where integer realizations would only add noise.
        """
        if not 0.0 <= tpr <= 1.0:
            raise ConfigurationError(f"tpr={tpr} must be in [0, 1]")
        if not 0.0 <= fpr <= 1.0:
            raise ConfigurationError(f"fpr={fpr} must be in [0, 1]")
        if positives < 0 or negatives < 0:
            raise ConfigurationError("positives and negatives must be >= 0")
        return cls(
            tp=tpr * positives,
            fn=(1.0 - tpr) * positives,
            fp=fpr * negatives,
            tn=(1.0 - fpr) * negatives,
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Total number of analysis sites."""
        return self.tp + self.fp + self.fn + self.tn

    @property
    def positives(self) -> float:
        """Number of truly vulnerable sites (condition positive)."""
        return self.tp + self.fn

    @property
    def negatives(self) -> float:
        """Number of truly safe sites (condition negative)."""
        return self.fp + self.tn

    @property
    def predicted_positives(self) -> float:
        """Number of sites the tool reported."""
        return self.tp + self.fp

    @property
    def predicted_negatives(self) -> float:
        """Number of sites the tool stayed silent about."""
        return self.fn + self.tn

    @property
    def prevalence(self) -> float:
        """Fraction of sites that are truly vulnerable."""
        return self.positives / self.total

    # ------------------------------------------------------------------
    # Rates (building blocks reused by the metric definitions)
    # ------------------------------------------------------------------
    @property
    def tpr(self) -> float:
        """True-positive rate (recall); ``nan`` when there are no positives."""
        return self.tp / self.positives if self.positives else float("nan")

    @property
    def fpr(self) -> float:
        """False-positive rate; ``nan`` when there are no negatives."""
        return self.fp / self.negatives if self.negatives else float("nan")

    @property
    def tnr(self) -> float:
        """True-negative rate (specificity); ``nan`` without negatives."""
        return self.tn / self.negatives if self.negatives else float("nan")

    @property
    def fnr(self) -> float:
        """False-negative rate; ``nan`` when there are no positives."""
        return self.fn / self.positives if self.positives else float("nan")

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        if not isinstance(other, ConfusionMatrix):
            return NotImplemented
        return ConfusionMatrix(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
            tn=self.tn + other.tn,
        )

    def with_prevalence(self, prevalence: float, total: float | None = None) -> "ConfusionMatrix":
        """Return the expected matrix of the same tool at another prevalence.

        The tool's intrinsic operating point (``tpr``, ``fpr``) is held fixed
        while the class balance of the workload changes.  This is the core
        manoeuvre behind the paper's argument that prevalence-dependent
        metrics (accuracy, precision) can mislead: the tool has not changed,
        only the workload mix.
        """
        if not 0.0 < prevalence < 1.0:
            raise ConfigurationError(f"prevalence={prevalence} must be in (0, 1)")
        if self.positives == 0 or self.negatives == 0:
            raise ConfigurationError(
                "cannot rebalance a matrix with no positives or no negatives: "
                "the tool's operating point is not identified"
            )
        n = self.total if total is None else float(total)
        positives = prevalence * n
        negatives = (1.0 - prevalence) * n
        return ConfusionMatrix.from_rates(self.tpr, self.fpr, positives, negatives)

    def resample(self, seed: int | np.random.Generator) -> "ConfusionMatrix":
        """Bootstrap-resample the matrix (multinomial over the four cells).

        Used by the discrimination/repeatability studies to simulate re-runs
        of the benchmark over equally-sized workloads drawn from the same
        population.  Counts must be (near-)integers.
        """
        rng = rng_from_seed(seed)
        counts = np.array([self.tp, self.fp, self.fn, self.tn], dtype=float)
        n = int(round(counts.sum()))
        probabilities = counts / counts.sum()
        tp, fp, fn, tn = rng.multinomial(n, probabilities)
        # A degenerate resample (all four cells could collapse only if n == 0,
        # which __post_init__ forbids) is impossible, but a resample can lose
        # all positives; metrics handle that via their undefined policy.
        return ConfusionMatrix(tp=float(tp), fp=float(fp), fn=float(fn), tn=float(tn))

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(tp, fp, fn, tn)``."""
        return (self.tp, self.fp, self.fn, self.tn)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConfusionMatrix(tp={self.tp:g}, fp={self.fp:g}, "
            f"fn={self.fn:g}, tn={self.tn:g})"
        )

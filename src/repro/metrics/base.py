"""Metric abstraction.

A *metric* is a scalar summary of a confusion matrix used to compare
vulnerability detection tools.  The paper gathers a large set of candidate
metrics and analyzes them; this module defines the common interface so the
properties framework, the scenario analysis and the MCDA validation can treat
every candidate uniformly.
"""

from __future__ import annotations

import enum
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError, UndefinedMetricError
from repro.metrics.confusion import ConfusionMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.metrics.batch import ConfusionBatch

__all__ = ["Metric", "MetricFamily", "Orientation", "MetricInfo"]


class MetricFamily(enum.Enum):
    """Coarse grouping of candidate metrics, used in the catalog table."""

    SENSITIVITY = "sensitivity"  # how much of the truth is found (recall family)
    EXACTNESS = "exactness"  # how trustworthy the reports are (precision family)
    ERROR_RATE = "error rate"  # direct error frequencies (FPR, FNR, FDR, FOR)
    COMPOSITE = "composite"  # combine both error types (F, MCC, J, kappa, ...)
    LIKELIHOOD = "likelihood"  # odds/likelihood ratios (DOR, LR+, LR-)
    COST = "cost"  # explicit misclassification-cost models


class Orientation(enum.Enum):
    """Whether larger metric values mean a better tool."""

    HIGHER_IS_BETTER = "higher"
    LOWER_IS_BETTER = "lower"


@dataclass(frozen=True, slots=True)
class MetricInfo:
    """Static catalog entry for a metric (the row of the catalog table)."""

    name: str
    symbol: str
    formula: str
    family: MetricFamily
    orientation: Orientation
    lower_bound: float
    upper_bound: float
    chance_corrected: bool
    uses_tn: bool
    popularity: float
    """How commonly the metric appears in vulnerability-detection
    benchmarking literature, in [0, 1].  Curated, not computed; sources are
    the surveys cited by the paper."""


class Metric(ABC):
    """A scalar function of a :class:`ConfusionMatrix`.

    Subclasses implement :meth:`_compute` for the defined region and declare
    their catalog metadata through :attr:`info`.  Undefined inputs (for
    example precision of a tool that reported nothing) raise
    :class:`~repro.errors.UndefinedMetricError` from :meth:`compute`;
    :meth:`value_or_nan` converts that to ``nan`` for vectorized studies.
    """

    info: MetricInfo

    @property
    def name(self) -> str:
        """Human-readable metric name."""
        return self.info.name

    @property
    def symbol(self) -> str:
        """Short symbol used in table headers."""
        return self.info.symbol

    @abstractmethod
    def _compute(self, cm: ConfusionMatrix) -> float:
        """Compute the raw value; may return ``nan`` for undefined inputs."""

    def compute(self, cm: ConfusionMatrix) -> float:
        """Return the metric value, raising if it is undefined for ``cm``."""
        value = self._compute(cm)
        if math.isnan(value):
            raise UndefinedMetricError(
                f"{self.name} is undefined for {cm}"
            )
        return value

    def value_or_nan(self, cm: ConfusionMatrix) -> float:
        """Return the metric value, or ``nan`` where it is undefined."""
        return self._compute(cm)

    def compute_batch(self, batch: "ConfusionBatch") -> np.ndarray:
        """Evaluate the metric over every row of ``batch`` at numpy speed.

        Returns a shape-``(len(batch),)`` float array with ``nan`` where the
        metric is undefined — the vectorized counterpart of
        :meth:`value_or_nan`, and elementwise bit-identical to it.  Metrics
        that do not override :meth:`_compute_batch` fall back to a scalar
        loop, so custom metrics keep working unchanged.
        """
        values = np.asarray(self._compute_batch(batch), dtype=float)
        if values.shape != (len(batch),):
            raise ConfigurationError(
                f"{self.symbol} batch kernel returned shape {values.shape}, "
                f"expected ({len(batch)},)"
            )
        return values

    def _compute_batch(self, batch: "ConfusionBatch") -> np.ndarray:
        """Batch kernel; override with vectorized numpy for hot metrics."""
        return np.array(
            [self._compute(batch.matrix(i)) for i in range(len(batch))], dtype=float
        )

    def is_defined(self, cm: ConfusionMatrix) -> bool:
        """Whether the metric has a finite value for ``cm``."""
        return math.isfinite(self._compute(cm))

    def goodness(self, cm: ConfusionMatrix) -> float:
        """Return a value where *larger always means better*.

        Lower-is-better metrics are negated so ranking code can sort all
        metrics the same way.  ``nan`` propagates.
        """
        value = self._compute(cm)
        if self.info.orientation is Orientation.LOWER_IS_BETTER:
            return -value
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Metric {self.symbol}: {self.name}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Metric):
            return NotImplemented
        return self.info == other.info

    def __hash__(self) -> int:
        return hash(self.info)


def safe_div(numerator: float, denominator: float) -> float:
    """Division that yields ``nan`` instead of raising on a zero denominator."""
    if denominator == 0:
        return float("nan")
    return numerator / denominator

"""The catalog of candidate metrics.

This module implements every metric gathered for the study.  Each is a small
class deriving from :class:`~repro.metrics.base.Metric`; module-level
singleton instances are provided for the non-parameterized ones so user code
can write ``definitions.PRECISION.compute(cm)``.

The ``popularity`` figures in each :class:`MetricInfo` are curated estimates
of how frequently the metric appears in vulnerability-detection benchmarking
literature (1.0 = ubiquitous, 0.05 = seldom used).  They feed the
"acceptance" column of the properties matrix (experiment R2) and are *not*
used by any correctness-critical computation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.base import Metric, MetricFamily, MetricInfo, Orientation, safe_div
from repro.metrics.batch import ConfusionBatch, safe_div_array
from repro.metrics.confusion import ConfusionMatrix

__all__ = [
    "Recall",
    "Specificity",
    "Precision",
    "NegativePredictiveValue",
    "Accuracy",
    "ErrorRate",
    "BalancedAccuracy",
    "FMeasure",
    "MatthewsCorrelation",
    "Informedness",
    "Markedness",
    "GMean",
    "FowlkesMallows",
    "JaccardIndex",
    "CohenKappa",
    "DiagnosticOddsRatio",
    "PositiveLikelihoodRatio",
    "NegativeLikelihoodRatio",
    "FalsePositiveRate",
    "FalseNegativeRate",
    "FalseDiscoveryRate",
    "FalseOmissionRate",
    "PrevalenceThreshold",
    "Lift",
    "ExpectedCost",
    "NormalizedExpectedCost",
    "RECALL",
    "SPECIFICITY",
    "PRECISION",
    "NPV",
    "ACCURACY",
    "ERROR_RATE",
    "BALANCED_ACCURACY",
    "F1",
    "F2",
    "F05",
    "MCC",
    "INFORMEDNESS",
    "MARKEDNESS",
    "G_MEAN",
    "FOWLKES_MALLOWS",
    "JACCARD",
    "KAPPA",
    "DOR",
    "LR_POSITIVE",
    "LR_NEGATIVE",
    "FPR",
    "FNR",
    "FDR",
    "FOR",
    "PREVALENCE_THRESHOLD",
    "LIFT",
]


# ---------------------------------------------------------------------------
# Sensitivity family
# ---------------------------------------------------------------------------
class Recall(Metric):
    """Fraction of truly vulnerable sites the tool reports (TPR, sensitivity).

    The canonical "how much did we miss?" metric: a recall of 0.8 means 20%
    of the vulnerabilities remain undetected.
    """

    info = MetricInfo(
        name="Recall",
        symbol="REC",
        formula="TP / (TP + FN)",
        family=MetricFamily.SENSITIVITY,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=False,
        popularity=1.0,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        return safe_div(cm.tp, cm.positives)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return safe_div_array(batch.tp, batch.positives)


class Specificity(Metric):
    """Fraction of safe sites the tool correctly stays silent about (TNR)."""

    info = MetricInfo(
        name="Specificity",
        symbol="SPC",
        formula="TN / (TN + FP)",
        family=MetricFamily.SENSITIVITY,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=True,
        popularity=0.45,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        return safe_div(cm.tn, cm.negatives)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return safe_div_array(batch.tn, batch.negatives)


# ---------------------------------------------------------------------------
# Exactness family
# ---------------------------------------------------------------------------
class Precision(Metric):
    """Fraction of reported sites that are truly vulnerable (PPV).

    The canonical "how much triage effort is wasted?" metric: a precision of
    0.25 means three out of four reports are false alarms.
    """

    info = MetricInfo(
        name="Precision",
        symbol="PRE",
        formula="TP / (TP + FP)",
        family=MetricFamily.EXACTNESS,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=False,
        popularity=1.0,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        return safe_div(cm.tp, cm.predicted_positives)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return safe_div_array(batch.tp, batch.predicted_positives)


class NegativePredictiveValue(Metric):
    """Fraction of unreported sites that are truly safe (NPV)."""

    info = MetricInfo(
        name="Negative predictive value",
        symbol="NPV",
        formula="TN / (TN + FN)",
        family=MetricFamily.EXACTNESS,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=True,
        popularity=0.15,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        return safe_div(cm.tn, cm.predicted_negatives)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return safe_div_array(batch.tn, batch.predicted_negatives)


# ---------------------------------------------------------------------------
# Whole-matrix proportions
# ---------------------------------------------------------------------------
class Accuracy(Metric):
    """Fraction of all sites classified correctly.

    Ubiquitous but notoriously misleading at low prevalence: a tool that
    reports nothing scores ``1 - prevalence`` — experiment R6 reproduces
    exactly this failure mode.
    """

    info = MetricInfo(
        name="Accuracy",
        symbol="ACC",
        formula="(TP + TN) / N",
        family=MetricFamily.COMPOSITE,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=True,
        popularity=0.85,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        return (cm.tp + cm.tn) / cm.total

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return (batch.tp + batch.tn) / batch.total


class ErrorRate(Metric):
    """Fraction of all sites classified incorrectly (1 - accuracy)."""

    info = MetricInfo(
        name="Error rate",
        symbol="ERR",
        formula="(FP + FN) / N",
        family=MetricFamily.ERROR_RATE,
        orientation=Orientation.LOWER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=True,
        popularity=0.3,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        return (cm.fp + cm.fn) / cm.total

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return (batch.fp + batch.fn) / batch.total


class BalancedAccuracy(Metric):
    """Mean of recall and specificity; accuracy with the skew removed."""

    info = MetricInfo(
        name="Balanced accuracy",
        symbol="BAC",
        formula="(TPR + TNR) / 2",
        family=MetricFamily.COMPOSITE,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=True,
        popularity=0.2,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        tpr = safe_div(cm.tp, cm.positives)
        tnr = safe_div(cm.tn, cm.negatives)
        return (tpr + tnr) / 2.0

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return (batch.tpr + batch.tnr) / 2.0


# ---------------------------------------------------------------------------
# Composites
# ---------------------------------------------------------------------------
class FMeasure(Metric):
    """The F-beta family: weighted harmonic mean of precision and recall.

    ``beta`` > 1 weighs recall higher (F2 suits scenarios where missing a
    vulnerability is costly); ``beta`` < 1 weighs precision higher (F0.5
    suits triage-constrained scenarios); ``beta = 1`` is the familiar F1.
    """

    def __init__(self, beta: float = 1.0) -> None:
        if beta <= 0 or not math.isfinite(beta):
            raise ConfigurationError(f"beta={beta} must be a finite positive number")
        self.beta = beta
        label = f"{beta:g}"
        self.info = MetricInfo(
            name=f"F{label}-measure",
            symbol=f"F{label}",
            formula=f"(1+{label}^2) * PRE * REC / ({label}^2 * PRE + REC)",
            family=MetricFamily.COMPOSITE,
            orientation=Orientation.HIGHER_IS_BETTER,
            lower_bound=0.0,
            upper_bound=1.0,
            chance_corrected=False,
            uses_tn=False,
            popularity=0.75 if beta == 1.0 else 0.1,
        )

    def _compute(self, cm: ConfusionMatrix) -> float:
        b2 = self.beta * self.beta
        return safe_div((1.0 + b2) * cm.tp, (1.0 + b2) * cm.tp + b2 * cm.fn + cm.fp)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        b2 = self.beta * self.beta
        return safe_div_array(
            (1.0 + b2) * batch.tp, (1.0 + b2) * batch.tp + b2 * batch.fn + batch.fp
        )


class MatthewsCorrelation(Metric):
    """Matthews correlation coefficient (phi coefficient of the 2x2 table).

    A chance-corrected composite in [-1, 1] that uses all four cells.  The
    paper's "seldom used but adequate" exemplar for balanced comparisons.
    """

    info = MetricInfo(
        name="Matthews correlation coefficient",
        symbol="MCC",
        formula="(TP*TN - FP*FN) / sqrt((TP+FP)(TP+FN)(TN+FP)(TN+FN))",
        family=MetricFamily.COMPOSITE,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=-1.0,
        upper_bound=1.0,
        chance_corrected=True,
        uses_tn=True,
        popularity=0.1,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        denominator = math.sqrt(
            cm.predicted_positives * cm.positives * cm.negatives * cm.predicted_negatives
        )
        return safe_div(cm.tp * cm.tn - cm.fp * cm.fn, denominator)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        denominator = np.sqrt(
            batch.predicted_positives
            * batch.positives
            * batch.negatives
            * batch.predicted_negatives
        )
        return safe_div_array(batch.tp * batch.tn - batch.fp * batch.fn, denominator)


class Informedness(Metric):
    """Youden's J: TPR + TNR - 1; probability of an informed decision.

    Prevalence-invariant by construction (it only depends on the two intrinsic
    rates), which makes it a star performer in the prevalence study (R6).
    """

    info = MetricInfo(
        name="Informedness (Youden's J)",
        symbol="INF",
        formula="TPR + TNR - 1",
        family=MetricFamily.COMPOSITE,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=-1.0,
        upper_bound=1.0,
        chance_corrected=True,
        uses_tn=True,
        popularity=0.05,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        tpr = safe_div(cm.tp, cm.positives)
        tnr = safe_div(cm.tn, cm.negatives)
        return tpr + tnr - 1.0

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return batch.tpr + batch.tnr - 1.0


class Markedness(Metric):
    """PPV + NPV - 1; the predictive-value dual of informedness."""

    info = MetricInfo(
        name="Markedness",
        symbol="MRK",
        formula="PPV + NPV - 1",
        family=MetricFamily.COMPOSITE,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=-1.0,
        upper_bound=1.0,
        chance_corrected=True,
        uses_tn=True,
        popularity=0.05,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        ppv = safe_div(cm.tp, cm.predicted_positives)
        npv = safe_div(cm.tn, cm.predicted_negatives)
        return ppv + npv - 1.0

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        ppv = safe_div_array(batch.tp, batch.predicted_positives)
        npv = safe_div_array(batch.tn, batch.predicted_negatives)
        return ppv + npv - 1.0


class GMean(Metric):
    """Geometric mean of recall and specificity."""

    info = MetricInfo(
        name="Geometric mean",
        symbol="GM",
        formula="sqrt(TPR * TNR)",
        family=MetricFamily.COMPOSITE,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=True,
        popularity=0.1,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        tpr = safe_div(cm.tp, cm.positives)
        tnr = safe_div(cm.tn, cm.negatives)
        product = tpr * tnr
        return math.sqrt(product) if product >= 0 else float("nan")

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        # tpr/tnr are >= 0 or nan, so the product is never negative and
        # np.sqrt propagates nan quietly — same policy as the scalar guard.
        return np.sqrt(batch.tpr * batch.tnr)


class FowlkesMallows(Metric):
    """Geometric mean of precision and recall."""

    info = MetricInfo(
        name="Fowlkes-Mallows index",
        symbol="FM",
        formula="sqrt(PPV * TPR)",
        family=MetricFamily.COMPOSITE,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=False,
        popularity=0.05,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        ppv = safe_div(cm.tp, cm.predicted_positives)
        tpr = safe_div(cm.tp, cm.positives)
        product = ppv * tpr
        return math.sqrt(product) if product >= 0 else float("nan")

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        ppv = safe_div_array(batch.tp, batch.predicted_positives)
        return np.sqrt(ppv * batch.tpr)


class JaccardIndex(Metric):
    """Jaccard index / critical success index: TP over the union of alarms
    and vulnerabilities.  Ignores TN entirely."""

    info = MetricInfo(
        name="Jaccard index (CSI)",
        symbol="JAC",
        formula="TP / (TP + FP + FN)",
        family=MetricFamily.COMPOSITE,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=False,
        popularity=0.1,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        return safe_div(cm.tp, cm.tp + cm.fp + cm.fn)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return safe_div_array(batch.tp, batch.tp + batch.fp + batch.fn)


class CohenKappa(Metric):
    """Cohen's kappa: agreement with ground truth corrected for chance."""

    info = MetricInfo(
        name="Cohen's kappa",
        symbol="KAP",
        formula="(p_o - p_e) / (1 - p_e)",
        family=MetricFamily.COMPOSITE,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=-1.0,
        upper_bound=1.0,
        chance_corrected=True,
        uses_tn=True,
        popularity=0.15,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        n = cm.total
        p_observed = (cm.tp + cm.tn) / n
        p_expected = (
            cm.positives * cm.predicted_positives + cm.negatives * cm.predicted_negatives
        ) / (n * n)
        return safe_div(p_observed - p_expected, 1.0 - p_expected)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        n = batch.total
        p_observed = (batch.tp + batch.tn) / n
        p_expected = (
            batch.positives * batch.predicted_positives
            + batch.negatives * batch.predicted_negatives
        ) / (n * n)
        return safe_div_array(p_observed - p_expected, 1.0 - p_expected)


# ---------------------------------------------------------------------------
# Likelihood family
# ---------------------------------------------------------------------------
class DiagnosticOddsRatio(Metric):
    """Odds of a report on a vulnerable site vs. a safe one: unbounded,
    undefined whenever any error cell is zero — properties the R2 analysis
    flags as problematic for benchmarking."""

    info = MetricInfo(
        name="Diagnostic odds ratio",
        symbol="DOR",
        formula="(TP * TN) / (FP * FN)",
        family=MetricFamily.LIKELIHOOD,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=math.inf,
        chance_corrected=False,
        uses_tn=True,
        popularity=0.05,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        return safe_div(cm.tp * cm.tn, cm.fp * cm.fn)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return safe_div_array(batch.tp * batch.tn, batch.fp * batch.fn)


class PositiveLikelihoodRatio(Metric):
    """TPR / FPR: how much a report raises the odds the site is vulnerable."""

    info = MetricInfo(
        name="Positive likelihood ratio",
        symbol="LR+",
        formula="TPR / FPR",
        family=MetricFamily.LIKELIHOOD,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=math.inf,
        chance_corrected=False,
        uses_tn=True,
        popularity=0.05,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        tpr = safe_div(cm.tp, cm.positives)
        fpr = safe_div(cm.fp, cm.negatives)
        return safe_div(tpr, fpr)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return safe_div_array(batch.tpr, batch.fpr)


class NegativeLikelihoodRatio(Metric):
    """FNR / TNR: how much silence lowers the odds the site is vulnerable."""

    info = MetricInfo(
        name="Negative likelihood ratio",
        symbol="LR-",
        formula="FNR / TNR",
        family=MetricFamily.LIKELIHOOD,
        orientation=Orientation.LOWER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=math.inf,
        chance_corrected=False,
        uses_tn=True,
        popularity=0.05,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        fnr = safe_div(cm.fn, cm.positives)
        tnr = safe_div(cm.tn, cm.negatives)
        return safe_div(fnr, tnr)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return safe_div_array(batch.fnr, batch.tnr)


# ---------------------------------------------------------------------------
# Error-rate family
# ---------------------------------------------------------------------------
class FalsePositiveRate(Metric):
    """Fraction of safe sites wrongly reported (fall-out)."""

    info = MetricInfo(
        name="False positive rate",
        symbol="FPR",
        formula="FP / (FP + TN)",
        family=MetricFamily.ERROR_RATE,
        orientation=Orientation.LOWER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=True,
        popularity=0.6,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        return safe_div(cm.fp, cm.negatives)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return safe_div_array(batch.fp, batch.negatives)


class FalseNegativeRate(Metric):
    """Fraction of vulnerable sites missed (miss rate)."""

    info = MetricInfo(
        name="False negative rate",
        symbol="FNR",
        formula="FN / (FN + TP)",
        family=MetricFamily.ERROR_RATE,
        orientation=Orientation.LOWER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=False,
        popularity=0.5,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        return safe_div(cm.fn, cm.positives)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return safe_div_array(batch.fn, batch.positives)


class FalseDiscoveryRate(Metric):
    """Fraction of reports that are false alarms (1 - precision)."""

    info = MetricInfo(
        name="False discovery rate",
        symbol="FDR",
        formula="FP / (FP + TP)",
        family=MetricFamily.ERROR_RATE,
        orientation=Orientation.LOWER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=False,
        popularity=0.2,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        return safe_div(cm.fp, cm.predicted_positives)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return safe_div_array(batch.fp, batch.predicted_positives)


class FalseOmissionRate(Metric):
    """Fraction of unreported sites that are actually vulnerable."""

    info = MetricInfo(
        name="False omission rate",
        symbol="FOR",
        formula="FN / (FN + TN)",
        family=MetricFamily.ERROR_RATE,
        orientation=Orientation.LOWER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=True,
        popularity=0.05,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        return safe_div(cm.fn, cm.predicted_negatives)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return safe_div_array(batch.fn, batch.predicted_negatives)


# ---------------------------------------------------------------------------
# Exotic / auxiliary
# ---------------------------------------------------------------------------
class PrevalenceThreshold(Metric):
    """Prevalence below which PPV drops under TNR; an operating-curve
    summary occasionally proposed for screening-style detectors."""

    info = MetricInfo(
        name="Prevalence threshold",
        symbol="PT",
        formula="(sqrt(TPR * FPR) - FPR) / (TPR - FPR)",
        family=MetricFamily.LIKELIHOOD,
        orientation=Orientation.LOWER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=1.0,
        chance_corrected=False,
        uses_tn=True,
        popularity=0.02,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        tpr = safe_div(cm.tp, cm.positives)
        fpr = safe_div(cm.fp, cm.negatives)
        if math.isnan(tpr) or math.isnan(fpr):
            return float("nan")
        if tpr < 0 or fpr < 0:
            return float("nan")
        product = tpr * fpr
        return safe_div(math.sqrt(product) - fpr, tpr - fpr)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        tpr, fpr = batch.tpr, batch.fpr
        # tpr/fpr are >= 0 or nan (never negative), so the scalar guards
        # reduce to nan propagation, which np.sqrt provides for free.
        return safe_div_array(np.sqrt(tpr * fpr) - fpr, tpr - fpr)


class Lift(Metric):
    """Precision relative to prevalence: how much better than blind guessing
    the tool's reports are."""

    info = MetricInfo(
        name="Lift",
        symbol="LFT",
        formula="PPV / prevalence",
        family=MetricFamily.LIKELIHOOD,
        orientation=Orientation.HIGHER_IS_BETTER,
        lower_bound=0.0,
        upper_bound=math.inf,
        chance_corrected=True,
        uses_tn=True,
        popularity=0.05,
    )

    def _compute(self, cm: ConfusionMatrix) -> float:
        ppv = safe_div(cm.tp, cm.predicted_positives)
        return safe_div(ppv, cm.prevalence)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        ppv = safe_div_array(batch.tp, batch.predicted_positives)
        return safe_div_array(ppv, batch.prevalence)


# ---------------------------------------------------------------------------
# Cost family
# ---------------------------------------------------------------------------
class ExpectedCost(Metric):
    """Average misclassification cost per analysis site.

    Parameterized by the cost of a missed vulnerability (``cost_fn``) and of
    triaging a false alarm (``cost_fp``).  This is the family the scenario
    analysis (R8) uses as ground truth: a scenario is *defined* by its cost
    structure, and a candidate metric is adequate for the scenario exactly
    when it ranks tools like expected cost does.
    """

    def __init__(self, cost_fn: float, cost_fp: float, label: str | None = None) -> None:
        if cost_fn < 0 or cost_fp < 0:
            raise ConfigurationError("costs must be non-negative")
        if cost_fn == 0 and cost_fp == 0:
            raise ConfigurationError("at least one cost must be positive")
        self.cost_fn = float(cost_fn)
        self.cost_fp = float(cost_fp)
        suffix = label or f"fn={cost_fn:g},fp={cost_fp:g}"
        self.info = MetricInfo(
            name=f"Expected cost ({suffix})",
            symbol="EC",
            formula="(c_fn * FN + c_fp * FP) / N",
            family=MetricFamily.COST,
            orientation=Orientation.LOWER_IS_BETTER,
            lower_bound=0.0,
            upper_bound=max(self.cost_fn, self.cost_fp),
            chance_corrected=False,
            uses_tn=True,
            popularity=0.1,
        )

    def _compute(self, cm: ConfusionMatrix) -> float:
        return (self.cost_fn * cm.fn + self.cost_fp * cm.fp) / cm.total

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        return (self.cost_fn * batch.fn + self.cost_fp * batch.fp) / batch.total


class NormalizedExpectedCost(Metric):
    """Expected cost normalized by the cost of the trivial majority policy.

    Values below 1 mean the tool beats the better of "report everything" and
    "report nothing"; values above 1 mean the tool is worse than not using a
    tool at all — an interpretation the cost literature argues is exactly
    what benchmark consumers need.
    """

    def __init__(self, cost_fn: float, cost_fp: float, label: str | None = None) -> None:
        self._raw = ExpectedCost(cost_fn, cost_fp, label=label)
        suffix = label or f"fn={cost_fn:g},fp={cost_fp:g}"
        self.info = MetricInfo(
            name=f"Normalized expected cost ({suffix})",
            symbol="NEC",
            formula="EC / min(c_fn * prev, c_fp * (1 - prev))",
            family=MetricFamily.COST,
            orientation=Orientation.LOWER_IS_BETTER,
            lower_bound=0.0,
            upper_bound=math.inf,
            chance_corrected=True,
            uses_tn=True,
            popularity=0.02,
        )

    def _compute(self, cm: ConfusionMatrix) -> float:
        raw = self._raw._compute(cm)
        prevalence = cm.prevalence
        trivial = min(
            self._raw.cost_fn * prevalence, self._raw.cost_fp * (1.0 - prevalence)
        )
        return safe_div(raw, trivial)

    def _compute_batch(self, batch: ConfusionBatch) -> np.ndarray:
        raw = self._raw._compute_batch(batch)
        prevalence = batch.prevalence
        trivial = np.minimum(
            self._raw.cost_fn * prevalence, self._raw.cost_fp * (1.0 - prevalence)
        )
        return safe_div_array(raw, trivial)


# ---------------------------------------------------------------------------
# Singleton instances
# ---------------------------------------------------------------------------
RECALL = Recall()
SPECIFICITY = Specificity()
PRECISION = Precision()
NPV = NegativePredictiveValue()
ACCURACY = Accuracy()
ERROR_RATE = ErrorRate()
BALANCED_ACCURACY = BalancedAccuracy()
F1 = FMeasure(1.0)
F2 = FMeasure(2.0)
F05 = FMeasure(0.5)
MCC = MatthewsCorrelation()
INFORMEDNESS = Informedness()
MARKEDNESS = Markedness()
G_MEAN = GMean()
FOWLKES_MALLOWS = FowlkesMallows()
JACCARD = JaccardIndex()
KAPPA = CohenKappa()
DOR = DiagnosticOddsRatio()
LR_POSITIVE = PositiveLikelihoodRatio()
LR_NEGATIVE = NegativeLikelihoodRatio()
FPR = FalsePositiveRate()
FNR = FalseNegativeRate()
FDR = FalseDiscoveryRate()
FOR = FalseOmissionRate()
PREVALENCE_THRESHOLD = PrevalenceThreshold()
LIFT = Lift()

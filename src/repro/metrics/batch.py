"""Batched confusion matrices — the vectorized resampling substrate.

The bootstrap studies (discrimination R7, repeatability R2, run-to-run noise
R19) evaluate every candidate metric on hundreds of multinomial resamples of
the same confusion matrix.  Doing that one :class:`~repro.metrics.confusion.
ConfusionMatrix` at a time walks a Python loop per resample per metric; a
:class:`ConfusionBatch` instead holds the four cell counts as shape-``(n,)``
float arrays so a metric kernel can evaluate all ``n`` matrices in a handful
of numpy operations.

Stream compatibility contract: :meth:`ConfusionBatch.resample` draws all
resamples with a *single* ``rng.multinomial(total, probs, size=n)`` call
using the same cell order as :meth:`ConfusionMatrix.resample` (``tp, fp, fn,
tn``).  NumPy's sized multinomial consumes the bit stream exactly like the
equivalent sequence of single draws, so at the same seed the batch is
byte-identical to ``n`` scalar ``resample`` calls — vectorization never
changes a published statistic.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro._rng import rng_from_seed
from repro.errors import ConfigurationError
from repro.metrics.confusion import ConfusionMatrix

__all__ = ["ConfusionBatch", "safe_div_array"]


def safe_div_array(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Elementwise division yielding ``nan`` where the denominator is zero.

    The array counterpart of :func:`repro.metrics.base.safe_div`: for every
    element the result is bit-identical to the scalar helper (a genuine IEEE
    division where the denominator is non-zero, ``nan`` where it is zero, and
    ``nan`` propagated from a ``nan`` numerator or denominator).
    """
    numerator = np.asarray(numerator, dtype=float)
    denominator = np.asarray(denominator, dtype=float)
    out = np.full(np.broadcast(numerator, denominator).shape, np.nan)
    np.divide(numerator, denominator, out=out, where=denominator != 0)
    return out


@dataclass(frozen=True)
class ConfusionBatch:
    """``n`` confusion matrices stored column-wise as shape-``(n,)`` arrays.

    The batch mirrors the :class:`ConfusionMatrix` aggregate/rate API with
    array-valued properties, so metric kernels read almost exactly like their
    scalar counterparts.  Rates that are undefined for a row (``tpr`` with no
    positives, ...) are ``nan`` in that row rather than raising.
    """

    tp: np.ndarray
    fp: np.ndarray
    fn: np.ndarray
    tn: np.ndarray

    def __post_init__(self) -> None:
        for field in ("tp", "fp", "fn", "tn"):
            array = np.asarray(getattr(self, field), dtype=float)
            if array.ndim != 1:
                raise ConfigurationError(
                    f"confusion batch column {field} must be 1-D, got shape {array.shape}"
                )
            object.__setattr__(self, field, array)
        shapes = {self.tp.shape, self.fp.shape, self.fn.shape, self.tn.shape}
        if len(shapes) != 1:
            raise ConfigurationError(f"confusion batch columns disagree in shape: {shapes}")
        if len(self) == 0:
            raise ConfigurationError("confusion batch must contain at least one matrix")
        stacked = np.stack([self.tp, self.fp, self.fn, self.tn])
        if not np.all(np.isfinite(stacked)) or np.any(stacked < 0):
            raise ConfigurationError("confusion batch counts must be finite and >= 0")
        if np.any(self.total == 0):
            raise ConfigurationError("every matrix in a confusion batch needs >= 1 site")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_matrices(cls, matrices: Iterable[ConfusionMatrix]) -> "ConfusionBatch":
        """Stack individual matrices (e.g. one per tool) into a batch."""
        rows = list(matrices)
        if not rows:
            raise ConfigurationError("from_matrices needs at least one matrix")
        return cls(
            tp=np.array([cm.tp for cm in rows], dtype=float),
            fp=np.array([cm.fp for cm in rows], dtype=float),
            fn=np.array([cm.fn for cm in rows], dtype=float),
            tn=np.array([cm.tn for cm in rows], dtype=float),
        )

    @classmethod
    def resample(
        cls,
        cm: ConfusionMatrix,
        n_resamples: int,
        seed: int | np.random.Generator,
    ) -> "ConfusionBatch":
        """Draw ``n_resamples`` bootstrap resamples of ``cm`` in one call.

        Cell order and bit stream match ``n_resamples`` sequential
        :meth:`ConfusionMatrix.resample` calls on the same generator (see the
        module docstring), so downstream statistics are byte-identical to the
        scalar path.
        """
        if n_resamples < 1:
            raise ConfigurationError(f"n_resamples={n_resamples} must be >= 1")
        rng = rng_from_seed(seed)
        counts = np.array([cm.tp, cm.fp, cm.fn, cm.tn], dtype=float)
        n = int(round(counts.sum()))
        probabilities = counts / counts.sum()
        draws = rng.multinomial(n, probabilities, size=n_resamples).astype(float)
        return cls(tp=draws[:, 0], fp=draws[:, 1], fn=draws[:, 2], tn=draws[:, 3])

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.tp.shape[0])

    def matrix(self, index: int) -> ConfusionMatrix:
        """Materialize row ``index`` as a scalar :class:`ConfusionMatrix`."""
        return ConfusionMatrix(
            tp=float(self.tp[index]),
            fp=float(self.fp[index]),
            fn=float(self.fn[index]),
            tn=float(self.tn[index]),
        )

    def matrices(self) -> list[ConfusionMatrix]:
        """Materialize every row (the inverse of :meth:`from_matrices`)."""
        return [self.matrix(i) for i in range(len(self))]

    # ------------------------------------------------------------------
    # Aggregates (array-valued mirrors of ConfusionMatrix)
    # ------------------------------------------------------------------
    @property
    def total(self) -> np.ndarray:
        """Sites per matrix: TP + FP + FN + TN."""
        return self.tp + self.fp + self.fn + self.tn

    @property
    def positives(self) -> np.ndarray:
        """Ground-truth vulnerable sites: TP + FN."""
        return self.tp + self.fn

    @property
    def negatives(self) -> np.ndarray:
        """Ground-truth clean sites: FP + TN."""
        return self.fp + self.tn

    @property
    def predicted_positives(self) -> np.ndarray:
        """Sites the tool flagged: TP + FP."""
        return self.tp + self.fp

    @property
    def predicted_negatives(self) -> np.ndarray:
        """Sites the tool passed over: FN + TN."""
        return self.fn + self.tn

    @property
    def prevalence(self) -> np.ndarray:
        """Fraction of sites that are truly vulnerable."""
        return self.positives / self.total

    # ------------------------------------------------------------------
    # Rates (nan where undefined, matching the scalar properties)
    # ------------------------------------------------------------------
    @property
    def tpr(self) -> np.ndarray:
        """True-positive rate (recall): TP / (TP + FN)."""
        return safe_div_array(self.tp, self.positives)

    @property
    def fpr(self) -> np.ndarray:
        """False-positive rate: FP / (FP + TN)."""
        return safe_div_array(self.fp, self.negatives)

    @property
    def tnr(self) -> np.ndarray:
        """True-negative rate (specificity): TN / (FP + TN)."""
        return safe_div_array(self.tn, self.negatives)

    @property
    def fnr(self) -> np.ndarray:
        """False-negative rate: FN / (TP + FN)."""
        return safe_div_array(self.fn, self.positives)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ConfusionBatch n={len(self)}>"

"""Benchmark-as-a-service: a long-running campaign service over the engine.

The batch CLI runs one campaign and exits; this package keeps the engine
resident behind a small HTTP surface so many tenants can submit sharded
campaigns, watch shard-level progress, and query finished totals:

- :mod:`repro.serve.fairness` — weighted deficit round-robin across
  tenants, so one abusive tenant cannot starve the rest;
- :mod:`repro.serve.queue` — the persistent job queue (one schema-tagged
  JSON record per job, atomically rewritten on every transition);
- :mod:`repro.serve.cache` — an LRU hot cache over the result disk tier
  for read-heavy clients;
- :mod:`repro.serve.service` — the scheduler that dispatches queued jobs
  onto :func:`~repro.bench.engine.shards.run_sharded_campaign`, each under
  its own write-ahead journal;
- :mod:`repro.serve.app` — the asyncio HTTP front end (stdlib only);
- :mod:`repro.serve.trace` — the Poisson workload model used by the
  fairness tests and ``benchmarks/bench_serve.py``.

Crash safety is inherited, not reimplemented: every running job journals
its shard cells through the PR 9 WAL, so a service killed with ``SIGKILL``
mid-campaign resumes every in-flight job on restart with totals
bit-identical to an uninterrupted run (architecture invariant 9).
"""

from __future__ import annotations

from repro.serve.cache import ResultCache
from repro.serve.fairness import DeficitRoundRobin, QueuedJob
from repro.serve.queue import JOB_STATES, JobQueue, JobRecord, JobSpec
from repro.serve.service import CampaignService, ServiceConfig
from repro.serve.trace import PoissonTrace, TraceEvent, build_trace

__all__ = [
    "DeficitRoundRobin",
    "QueuedJob",
    "JobSpec",
    "JobRecord",
    "JobQueue",
    "JOB_STATES",
    "ResultCache",
    "CampaignService",
    "ServiceConfig",
    "PoissonTrace",
    "TraceEvent",
    "build_trace",
]

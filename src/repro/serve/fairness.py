"""Weighted deficit round-robin: per-tenant fair scheduling for the queue.

The service's unit of work is not a request but a campaign, and campaigns
have wildly different costs (a 200-unit smoke vs a 10⁶-unit corpus).
Plain FIFO lets one abusive tenant bury everyone else's jobs behind its
backlog; plain round-robin over *jobs* still lets it win by submitting
huge campaigns.  Deficit round-robin (Shreedhar & Varghese, 1996) fixes
both: each tenant holds a *deficit counter* topped up by a per-turn
quantum scaled by its weight, and may only dispatch a job whose **cost in
workload units** fits the accumulated deficit.  Over any backlogged
interval, units served per tenant converge to the weight ratio — an
abusive tenant is bounded to its weight share no matter how many or how
large its submissions (see ``tests/serve/test_fairness.py``).

Within one tenant, jobs dispatch by descending priority (ties FIFO by
submission sequence).  Priority is deliberately tenant-local: letting a
priority flag jump the *cross-tenant* order would reintroduce exactly the
starvation DRR exists to prevent — any tenant could mark everything
urgent.  A high-priority job therefore preempts its own tenant's backlog
only, and still reaches the front within one DRR rotation.

>>> drr = DeficitRoundRobin(quantum=400)
>>> for n in range(3):
...     drr.push(QueuedJob(job_id=f"spam-{n}", tenant="abusive", cost=400))
>>> drr.push(QueuedJob(job_id="polite-1", tenant="polite", cost=400))
>>> [drr.pop().job_id for _ in range(3)]
['spam-0', 'polite-1', 'spam-1']

The scheduler is not thread-safe by itself; :class:`~repro.serve.queue.
JobQueue` wraps it in the queue lock.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_QUANTUM",
    "QueuedJob",
    "DeficitRoundRobin",
]

#: Default per-turn deficit top-up, in workload units.  One quantum ≈ one
#: small campaign, so light tenants interleave at single-job granularity
#: while a huge campaign simply waits the proportional number of turns.
DEFAULT_QUANTUM = 10_000


@dataclass(frozen=True)
class QueuedJob:
    """What the scheduler needs to know about one queued job."""

    job_id: str
    tenant: str
    cost: int
    """Scheduling cost in workload units (the campaign's ``scale``)."""
    priority: int = 0
    """Tenant-local priority; higher dispatches first within the tenant."""
    seq: int = 0
    """Global submission sequence, the FIFO tiebreak within a priority."""

    def __post_init__(self) -> None:
        if self.cost < 1:
            raise ConfigurationError(
                f"job {self.job_id!r} has cost {self.cost}; the scheduler "
                f"needs a positive unit cost"
            )


@dataclass
class _TenantState:
    """One tenant's lane: its pending heap and deficit counter."""

    weight: float = 1.0
    deficit: float = 0.0
    heap: list[tuple[int, int, int, QueuedJob]] = field(default_factory=list)
    pushed: int = 0
    """Lane-local insertion counter: the final heap tiebreak, so jobs
    themselves never need to be orderable."""

    def push(self, job: QueuedJob) -> None:
        heapq.heappush(self.heap, (-job.priority, job.seq, self.pushed, job))
        self.pushed += 1

    def head(self) -> QueuedJob:
        return self.heap[0][3]

    def pop(self) -> QueuedJob:
        return heapq.heappop(self.heap)[3]


class DeficitRoundRobin:
    """Weighted DRR over per-tenant priority lanes.

    ``push`` enqueues; ``pop`` returns the next job to dispatch (or
    ``None`` when empty).  Tenants appear in the rotation only while they
    have pending jobs; an emptied tenant forfeits its remaining deficit,
    so idle tenants cannot bank credit and burst past the weight bound
    later.
    """

    def __init__(
        self,
        quantum: int = DEFAULT_QUANTUM,
        weights: dict[str, float] | None = None,
    ) -> None:
        if quantum < 1:
            raise ConfigurationError(
                f"quantum must be a positive unit count, got {quantum}"
            )
        self.quantum = quantum
        self._tenants: dict[str, _TenantState] = {}
        self._active: deque[str] = deque()
        self._pending = 0
        for tenant, weight in (weights or {}).items():
            self.set_weight(tenant, weight)

    def set_weight(self, tenant: str, weight: float) -> None:
        """Set a tenant's scheduling weight (default 1.0)."""
        if not tenant:
            raise ConfigurationError("tenant id must be non-empty")
        if not weight > 0:
            raise ConfigurationError(
                f"tenant {tenant!r} weight must be > 0, got {weight}"
            )
        self._state(tenant).weight = float(weight)

    def weight(self, tenant: str) -> float:
        """A tenant's scheduling weight."""
        state = self._tenants.get(tenant)
        return state.weight if state is not None else 1.0

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState()
        return state

    def __len__(self) -> int:
        return self._pending

    def push(self, job: QueuedJob) -> None:
        """Enqueue one job under its tenant's lane."""
        if not job.tenant:
            raise ConfigurationError(
                f"job {job.job_id!r} has an empty tenant id"
            )
        state = self._state(job.tenant)
        if not state.heap and job.tenant not in self._active:
            self._active.append(job.tenant)
        state.push(job)
        self._pending += 1

    def pop(self) -> QueuedJob | None:
        """The next job to dispatch under DRR, or ``None`` when empty.

        Visits the rotation head: if its deficit covers its head job's
        cost, the job dispatches and the cost is charged; otherwise the
        tenant earns one ``quantum × weight`` top-up and the rotation
        advances.  Costs are positive and quanta are positive, so every
        job is reachable in finitely many rotations — no starvation.
        """
        if not self._pending:
            return None
        while True:
            tenant = self._active[0]
            state = self._tenants[tenant]
            if not state.heap:
                # Emptied by a prior pop: leave the rotation, forfeit
                # banked deficit so idle time never becomes burst credit.
                self._active.popleft()
                state.deficit = 0.0
                continue
            if state.deficit >= state.head().cost:
                job = state.pop()
                state.deficit -= job.cost
                self._pending -= 1
                if not state.heap:
                    self._active.popleft()
                    state.deficit = 0.0
                return job
            state.deficit += self.quantum * state.weight
            self._active.rotate(-1)

    def snapshot(self) -> dict[str, dict[str, float | int]]:
        """Per-tenant queue depth, pending units, weight and deficit."""
        out: dict[str, dict[str, float | int]] = {}
        for tenant, state in sorted(self._tenants.items()):
            if not state.heap and tenant not in self._active:
                continue
            out[tenant] = {
                "pending_jobs": len(state.heap),
                "pending_units": sum(entry[3].cost for entry in state.heap),
                "weight": state.weight,
                "deficit": round(state.deficit, 6),
            }
        return out

"""LRU hot cache over the result disk tier, for read-heavy clients.

Finished campaign totals are tiny (a few hundred bytes of confusion
cells) but queried many times: dashboards poll, tenants re-fetch, and the
bench's query phase is deliberately read-dominated.  Results are persisted
once through the artifact store's integrity envelope
(:func:`repro.persist.save_cache_entry`, same sha256-digest discipline as
the shard-cells disk tier) and served from a bounded in-memory LRU in
front of it.  Every lookup lands on a counter — ``serve.cache.hits``,
``serve.cache.misses`` (memory miss, disk hit) or ``serve.cache.absent``
— so an operator can read the hit rate straight out of ``/v1/stats``.

A corrupt disk entry (truncated, bit-flipped, schema-drifted) is counted
on ``serve.cache.corrupt`` and reported absent rather than crashing the
query path; unlike shard cells, a finished result is not recomputable from
the cache's point of view, so the caller sees a clean 404.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.bench.engine.artifacts import ArtifactKey
from repro.errors import ArtifactCorruptError, ConfigurationError, PersistError
from repro.obs import Observability
from repro.persist import load_cache_entry, save_cache_entry

__all__ = [
    "DEFAULT_CACHE_CAPACITY",
    "ResultCache",
    "result_key",
]

#: Default number of finished results the hot tier holds in memory.
DEFAULT_CACHE_CAPACITY = 256


def result_key(job_id: str) -> ArtifactKey:
    """The artifact-store key a job's finished totals are filed under."""
    return ArtifactKey(kind="serve-result", name=job_id)


class ResultCache:
    """Capacity-bounded LRU in front of envelope-checked result files."""

    def __init__(
        self,
        results_dir: str | Path,
        capacity: int = DEFAULT_CACHE_CAPACITY,
        obs: Observability | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.results_dir = Path(results_dir)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.capacity = capacity
        self.obs = obs if obs is not None else Observability()
        self._lock = threading.Lock()
        self._hot: OrderedDict[str, dict[str, Any]] = OrderedDict()

    def _path(self, job_id: str) -> Path:
        return self.results_dir / result_key(job_id).filename

    def __len__(self) -> int:
        with self._lock:
            return len(self._hot)

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            if job_id in self._hot:
                return True
        return self._path(job_id).exists()

    def put(self, job_id: str, payload: dict[str, Any]) -> None:
        """Persist a finished result durably and admit it to the hot tier."""
        save_cache_entry(payload, self._path(job_id))
        with self._lock:
            self._hot[job_id] = payload
            self._hot.move_to_end(job_id)
            while len(self._hot) > self.capacity:
                self._hot.popitem(last=False)
                self.obs.metrics.inc("serve.cache.evicted")
            self.obs.metrics.set_gauge(
                "serve.cache.size", float(len(self._hot))
            )

    def get(self, job_id: str) -> dict[str, Any] | None:
        """A finished result, from memory if hot, else disk; ``None`` if
        absent (never persisted, or quarantine-worthy corruption)."""
        with self._lock:
            payload = self._hot.get(job_id)
            if payload is not None:
                self._hot.move_to_end(job_id)
                self.obs.metrics.inc("serve.cache.hits")
                return payload
        path = self._path(job_id)
        if not path.exists():
            self.obs.metrics.inc("serve.cache.absent")
            return None
        try:
            payload = load_cache_entry(path)
        except (PersistError, ArtifactCorruptError) as error:
            self.obs.metrics.inc("serve.cache.corrupt")
            with self.obs.tracer.span(
                "serve.cache.corrupt", job=job_id, reason=type(error).__name__
            ):
                pass
            return None
        self.obs.metrics.inc("serve.cache.misses")
        with self._lock:
            self._hot[job_id] = payload
            self._hot.move_to_end(job_id)
            while len(self._hot) > self.capacity:
                self._hot.popitem(last=False)
                self.obs.metrics.inc("serve.cache.evicted")
            self.obs.metrics.set_gauge(
                "serve.cache.size", float(len(self._hot))
            )
        return payload

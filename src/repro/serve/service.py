"""The campaign service core: queue in, ``run_sharded_campaign`` out.

This is the headless heart of ``repro serve`` — everything the HTTP layer
does maps onto a thread-safe method here, so the scheduler is fully
testable without a socket.  A dispatcher thread pops jobs in deficit-
round-robin order (:class:`~repro.serve.queue.JobQueue`) whenever an
execution slot is free and hands them to a small worker pool; each job is
one unchanged :func:`~repro.bench.engine.shards.run_sharded_campaign`
call, always under its own write-ahead journal.

Crash recovery (architecture invariant 9) is a composition, not new
machinery: on :meth:`CampaignService.start` the queue reloads every
persisted job record, unfinished jobs re-enqueue, and a re-dispatched job
whose journal survived resumes through ``resume_journal`` — the PR 9
replay path whose totals are bit-identical to an uninterrupted run
(invariant 8).  A journal too torn to even carry its header is deleted
and the job simply starts over; either way the finished totals are the
same bytes.

Graceful shutdown mirrors the CLI: :meth:`CampaignService.stop` requests
a drain through each running job's
:class:`~repro.bench.engine.supervise.ShutdownSignal`, the in-flight
shards fold and journal, and the job record stays ``running`` on disk so
the next start resumes it.
"""

from __future__ import annotations

import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.bench.engine.shards import run_sharded_campaign
from repro.bench.engine.supervise import ShutdownSignal
from repro.bench.engine.wal import is_journal, replay_journal
from repro.errors import ReproError, ServeError
from repro.obs import Observability
from repro.persist import streaming_totals_to_dict
from repro.serve.cache import DEFAULT_CACHE_CAPACITY, ResultCache
from repro.serve.fairness import DEFAULT_QUANTUM
from repro.serve.queue import JobQueue, JobRecord, JobSpec

__all__ = [
    "ServiceConfig",
    "CampaignService",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a service instance needs to know at construction."""

    state_dir: Path
    """Root of the durable state: job records, journals, results."""
    workers: int = 1
    """Concurrent campaigns (each one further parallelized by ``jobs``)."""
    jobs: int = 1
    """Shard parallelism inside one campaign."""
    executor: str = "thread"
    """Campaign executor: ``thread`` or ``process`` (cached pools)."""
    quantum: int = DEFAULT_QUANTUM
    """DRR per-turn deficit top-up, in workload units."""
    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    """Hot result-cache entries held in memory."""
    weights: dict[str, float] = field(default_factory=dict)
    """Per-tenant scheduling weights (unlisted tenants weigh 1.0)."""


class CampaignService:
    """Fair-queued campaign execution behind a thread-safe facade."""

    def __init__(
        self, config: ServiceConfig, obs: Observability | None = None
    ) -> None:
        self.config = config
        self.obs = obs if obs is not None else Observability()
        self.queue = JobQueue(
            config.state_dir,
            quantum=config.quantum,
            weights=dict(config.weights),
            obs=self.obs,
        )
        self.results = ResultCache(
            Path(config.state_dir) / "results",
            capacity=config.cache_capacity,
            obs=self.obs,
        )
        self.cache_dir = Path(config.state_dir) / "cache"
        self._pool: ThreadPoolExecutor | None = None
        self._dispatcher: threading.Thread | None = None
        self._stopping = threading.Event()
        self._wake = threading.Event()
        self._slots = threading.Semaphore(config.workers)
        self._lock = threading.Lock()
        self._running: dict[str, _RunningJob] = {}

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> list[JobRecord]:
        """Recover persisted state and start dispatching.

        Returns the re-enqueued (recovered) records, so callers can log
        what a restart picked back up.
        """
        recovered = self.queue.recover()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="serve-job",
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True
        )
        self._dispatcher.start()
        return recovered

    def stop(self, timeout: float = 60.0) -> None:
        """Drain gracefully: running campaigns fold in-flight shards and
        journal them, then the pool shuts down.  Interrupted jobs keep
        their ``running`` record and resume on the next :meth:`start`."""
        self._stopping.set()
        self._wake.set()
        with self._lock:
            running = list(self._running.values())
        for job in running:
            job.shutdown.request("service stop")
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout)
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    # -- submissions and queries -------------------------------------------
    def submit(self, payload: dict[str, Any]) -> JobRecord:
        """Validate and enqueue one campaign submission (HTTP body dict)."""
        spec = JobSpec.from_payload(payload)
        tenant = str(payload.get("tenant", "default"))
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError) as error:
            raise ServeError(f"malformed priority: {error}") from error
        record = self.queue.submit(spec, tenant=tenant, priority=priority)
        self._wake.set()
        return record

    def job_status(self, job_id: str) -> dict[str, Any]:
        """One job's record plus live shard progress."""
        record = self.queue.get(job_id)
        status = record.to_dict()
        status.pop("schema", None)
        planned = record.spec.planned_shards
        status["shards"] = {
            "planned": planned,
            "completed": self._progress(record),
        }
        return status

    def _progress(self, record: JobRecord) -> int:
        if record.state == "completed":
            return record.spec.planned_shards
        with self._lock:
            running = self._running.get(record.job_id)
        if running is None:
            return 0
        completed = running.base_shards + running.obs.metrics.counter(
            "engine.shards.completed"
        ).value
        return min(completed, record.spec.planned_shards)

    def result(self, job_id: str) -> dict[str, Any]:
        """A finished job's totals payload, from the result cache."""
        record = self.queue.get(job_id)
        if record.state == "failed":
            raise ServeError(
                f"job {job_id} failed: {record.error}", status=409
            )
        if record.state != "completed":
            raise ServeError(
                f"job {job_id} is {record.state}; result not ready",
                status=409,
            )
        payload = self.results.get(job_id)
        if payload is None:
            raise ServeError(
                f"job {job_id} result is missing from the store", status=404
            )
        return payload

    def stats(self) -> dict[str, Any]:
        """The service metrics registry, for ``/v1/stats``."""
        return self.obs.metrics.to_dict()

    # -- execution ----------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stopping.is_set():
            if not self._slots.acquire(timeout=0.1):
                continue
            record = None if self._stopping.is_set() else self.queue.pop_next()
            if record is None:
                self._slots.release()
                self._wake.wait(timeout=0.1)
                self._wake.clear()
                continue
            assert self._pool is not None
            self._pool.submit(self._run_job, record)

    def _run_job(self, record: JobRecord) -> None:
        job = _RunningJob(record=record)
        with self._lock:
            self._running[record.job_id] = job
        try:
            self._execute(job)
        except ReproError as error:
            self.queue.finish(record.job_id, error=str(error))
        except Exception:  # noqa: BLE001 — a job must never kill the service
            self.queue.finish(
                record.job_id, error=traceback.format_exc(limit=3)
            )
        finally:
            with self._lock:
                self._running.pop(record.job_id, None)
            self._slots.release()
            self._wake.set()

    def _execute(self, job: _RunningJob) -> None:
        record = job.record
        spec = record.spec
        wal = self.queue.wal_path(record.job_id)
        resume = wal.exists() and is_journal(wal)
        if resume:
            # Shard-level progress restarts from the journal's replay
            # count; the per-job counter only sees freshly run shards.
            job.base_shards = len(replay_journal(wal).arrays)
            self.obs.metrics.inc("serve.jobs.resumed")
        elif wal.exists():
            # Torn before the header finished — nothing replayable.
            wal.unlink()
        with self.obs.tracer.span(
            "serve.job", job=record.job_id, tenant=record.tenant
        ):
            run = run_sharded_campaign(
                scale=None if resume else spec.scale,
                shard_size=spec.shard_size,
                seed=spec.seed,
                ecosystem=spec.ecosystem,
                tool_families=spec.tool_families,
                jobs=self.config.jobs,
                executor=self.config.executor,
                keep_going=True,
                cache_dir=str(self.cache_dir),
                obs=job.obs,
                wal_path=None if resume else str(wal),
                resume_journal=str(wal) if resume else None,
                shutdown=job.shutdown,
            )
        self.obs.metrics.merge_dict(job.obs.metrics.to_dict())
        if run.interrupted or job.shutdown.requested:
            # Drained, not done: leave the record running and the journal
            # in place; the next start() re-enqueues and resumes it.
            return
        if not run.ok or run.totals is None:
            counts = run.manifest.status_counts()
            bad = {k: v for k, v in counts.items() if k != "completed" and v}
            raise ServeError(f"campaign did not complete: {bad}", status=500)
        payload = {
            "job_id": record.job_id,
            "tenant": record.tenant,
            "totals": streaming_totals_to_dict(run.totals),
            "manifest": {
                "seed": run.manifest.seed,
                "scale": run.manifest.scale,
                "shard_size": run.manifest.shard_size,
                "ecosystem": run.manifest.ecosystem,
                "shards": run.manifest.n_shards,
                "statuses": run.manifest.status_counts(),
            },
        }
        self.results.put(record.job_id, payload)
        self.queue.finish(record.job_id)
        self.obs.metrics.observe(
            "serve.job.seconds", run.manifest.wall_seconds
        )
        wal.unlink(missing_ok=True)


@dataclass
class _RunningJob:
    """Live bookkeeping for one dispatched job."""

    record: JobRecord
    obs: Observability = field(default_factory=Observability)
    shutdown: ShutdownSignal = field(default_factory=ShutdownSignal)
    base_shards: int = 0
    """Shards already folded by journal replay before this dispatch."""

"""Poisson request traces: the load model for fairness tests and benches.

Serving benchmarks need arrival processes, not back-to-back loops: a
benchmark that fires requests as fast as the client can go measures the
client, and perfectly regular arrivals hide queueing effects entirely.
This module generates the standard open-loop model — per-tenant Poisson
arrivals (exponential inter-arrival gaps) over a fixed horizon — with one
deliberately *abusive* tenant submitting at a several-fold rate, which is
exactly the skew the deficit-round-robin scheduler must bound.

Everything is driven by an explicit seed so a trace is reproducible:
``bench_serve`` records the seed in ``results/BENCH_serve.json`` and the
fairness tests replay the same skew deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "NORMAL_RATE",
    "ABUSIVE_RATE",
    "TraceEvent",
    "PoissonTrace",
    "build_trace",
]

#: Default per-tick arrival rate of a well-behaved tenant.
NORMAL_RATE = 0.05

#: Default rate of the abusive tenant — 6× normal, enough that an unfair
#: scheduler visibly starves the others.
ABUSIVE_RATE = 0.3


@dataclass(frozen=True)
class TraceEvent:
    """One arrival: which tenant issues a request, and when."""

    at: float
    """Arrival time in trace ticks (monotone within the merged trace)."""
    tenant: str
    index: int
    """Global arrival order after the per-tenant streams merge."""


@dataclass(frozen=True)
class PoissonTrace:
    """A merged multi-tenant arrival trace plus its generation parameters."""

    events: tuple[TraceEvent, ...]
    rates: dict[str, float]
    duration: float
    seed: int

    @property
    def tenants(self) -> tuple[str, ...]:
        """Tenant ids in deterministic (sorted) order."""
        return tuple(sorted(self.rates))

    def count_for(self, tenant: str) -> int:
        """How many arrivals ``tenant`` contributes."""
        return sum(1 for event in self.events if event.tenant == tenant)


def _arrivals(rng: random.Random, rate: float, duration: float) -> list[float]:
    """Poisson arrival times: accumulate exponential inter-arrival gaps."""
    times: list[float] = []
    clock = rng.expovariate(rate)
    while clock < duration:
        times.append(clock)
        clock += rng.expovariate(rate)
    return times


def build_trace(
    n_tenants: int = 4,
    duration: float = 1000.0,
    seed: int = 2015,
    abusive: str | None = "tenant-0",
    normal_rate: float = NORMAL_RATE,
    abusive_rate: float = ABUSIVE_RATE,
) -> PoissonTrace:
    """A merged per-tenant Poisson trace with one optionally abusive tenant.

    Tenants are named ``tenant-0`` … ``tenant-{n-1}``; the ``abusive`` one
    (if named) arrives at ``abusive_rate``, the rest at ``normal_rate``.
    Per-tenant streams are generated independently (each from a seed
    derived from ``seed`` and the tenant id, so adding a tenant never
    perturbs the others) and merged in time order.
    """
    if n_tenants < 1:
        raise ConfigurationError(f"need at least one tenant, got {n_tenants}")
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    names = [f"tenant-{i}" for i in range(n_tenants)]
    if abusive is not None and abusive not in names:
        raise ConfigurationError(
            f"abusive tenant {abusive!r} is not one of {names}"
        )
    rates = {
        name: abusive_rate if name == abusive else normal_rate
        for name in names
    }
    merged: list[tuple[float, str]] = []
    for name in names:
        rng = random.Random(f"{seed}:{name}")
        merged.extend(
            (at, name) for at in _arrivals(rng, rates[name], duration)
        )
    merged.sort()
    events = tuple(
        TraceEvent(at=at, tenant=tenant, index=i)
        for i, (at, tenant) in enumerate(merged)
    )
    return PoissonTrace(
        events=events, rates=rates, duration=duration, seed=seed
    )

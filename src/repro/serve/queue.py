"""The persistent job queue behind the campaign service.

Every job is one schema-tagged JSON file (``repro/serve-job@1``) under the
service state dir, atomically rewritten via :func:`repro.persist.save_json`
on every state transition — so a crash at any instant leaves each record
either in its previous state or its next one, never torn.  The queue
itself is therefore reconstructible from disk alone: :meth:`JobQueue.
recover` rescans the records, re-enqueues everything that had not finished
(``queued`` *and* ``running`` — a running job's progress lives in its
write-ahead journal, not the record), and resumes the submission sequence.

Job lifecycle::

    queued ──► running ──► completed
                  │  ▲         └─ terminal (result cached on disk)
                  │  └ recover (journal replay)
                  └──► failed — terminal (error recorded)

Scheduling order is delegated to
:class:`~repro.serve.fairness.DeficitRoundRobin`; this module adds the
persistence, the record bookkeeping, and thread safety (one lock around
queue mutations — campaign execution happens far from it).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError, PersistError, ServeError
from repro.obs import Observability
from repro.persist import SERVE_JOB_SCHEMA, load_json, save_json
from repro.serve.fairness import DEFAULT_QUANTUM, DeficitRoundRobin, QueuedJob
from repro.tools.families import get_family
from repro.workload.ecosystems import DEFAULT_ECOSYSTEM, get_ecosystem
from repro.workload.sharded import DEFAULT_SHARD_SIZE

__all__ = [
    "JOB_STATES",
    "JobSpec",
    "JobRecord",
    "JobQueue",
]

#: Valid values of :attr:`JobRecord.state`, in lifecycle order.
JOB_STATES = ("queued", "running", "completed", "failed")

#: Submissions above this scale are rejected at the door: the service is
#: long-running and a single 10⁹-unit campaign would monopolize a worker
#: for days regardless of scheduling fairness.
MAX_JOB_SCALE = 50_000_000


@dataclass(frozen=True)
class JobSpec:
    """What a tenant asks the service to run: one sharded campaign."""

    scale: int
    shard_size: int = DEFAULT_SHARD_SIZE
    seed: int = 2015
    ecosystem: str = DEFAULT_ECOSYSTEM
    tool_families: tuple[str, ...] | None = None

    def validate(self) -> None:
        """Reject malformed specs at submission time, not dispatch time."""
        if not 1 <= self.scale <= MAX_JOB_SCALE:
            raise ServeError(
                f"scale must be in [1, {MAX_JOB_SCALE}], got {self.scale}"
            )
        if self.shard_size < 1:
            raise ServeError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )
        try:
            get_ecosystem(self.ecosystem)
            for key in self.tool_families or ():
                get_family(key)
        except ConfigurationError as error:
            raise ServeError(str(error)) from error

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "JobSpec":
        """Build (and validate) a spec from an untrusted request body."""
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        known = {"scale", "shard_size", "seed", "ecosystem", "tool_families"}
        unknown = set(payload) - known - {"tenant", "priority"}
        if unknown:
            raise ServeError(f"unknown spec fields: {sorted(unknown)}")
        if "scale" not in payload:
            raise ServeError("spec needs a 'scale' (workload units)")
        try:
            spec = cls(
                scale=int(payload["scale"]),
                shard_size=int(payload.get("shard_size", DEFAULT_SHARD_SIZE)),
                seed=int(payload.get("seed", 2015)),
                ecosystem=str(payload.get("ecosystem", DEFAULT_ECOSYSTEM)),
                tool_families=(
                    tuple(str(k) for k in payload["tool_families"])
                    if payload.get("tool_families") is not None
                    else None
                ),
            )
        except (TypeError, ValueError) as error:
            raise ServeError(f"malformed spec: {error}") from error
        spec.validate()
        return spec

    @property
    def planned_shards(self) -> int:
        """Shards the plan geometry implies."""
        return (self.scale + self.shard_size - 1) // self.shard_size

    def to_dict(self) -> dict[str, Any]:
        """Serialize for the job record."""
        return {
            "scale": self.scale,
            "shard_size": self.shard_size,
            "seed": self.seed,
            "ecosystem": self.ecosystem,
            "tool_families": (
                list(self.tool_families)
                if self.tool_families is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobSpec":
        """Rebuild a spec from a persisted record."""
        return cls(
            scale=payload["scale"],
            shard_size=payload["shard_size"],
            seed=payload["seed"],
            ecosystem=payload["ecosystem"],
            tool_families=(
                tuple(payload["tool_families"])
                if payload.get("tool_families") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class JobRecord:
    """One job's full persisted state (immutable; transitions replace it)."""

    job_id: str
    seq: int
    tenant: str
    priority: int
    spec: JobSpec
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    """How many times the job was dispatched (recoveries re-dispatch)."""
    error: str | None = None

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ConfigurationError(
                f"invalid job state {self.state!r}; expected one of "
                f"{JOB_STATES}"
            )

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in ("completed", "failed")

    def to_dict(self) -> dict[str, Any]:
        """Serialize with the serve-job schema tag."""
        return {
            "schema": SERVE_JOB_SCHEMA,
            "job_id": self.job_id,
            "seq": self.seq,
            "tenant": self.tenant,
            "priority": self.priority,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobRecord":
        """Rebuild a record, failing loudly on schema drift."""
        found = payload.get("schema")
        if found != SERVE_JOB_SCHEMA:
            raise ConfigurationError(
                f"expected schema {SERVE_JOB_SCHEMA!r}, found {found!r}"
            )
        return cls(
            job_id=payload["job_id"],
            seq=payload["seq"],
            tenant=payload["tenant"],
            priority=payload["priority"],
            spec=JobSpec.from_dict(payload["spec"]),
            state=payload["state"],
            submitted_at=payload["submitted_at"],
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            attempts=payload.get("attempts", 0),
            error=payload.get("error"),
        )


class JobQueue:
    """Persistent, fairness-scheduled job queue (thread-safe).

    ``state_dir`` gains two subdirectories: ``jobs/`` (one JSON record per
    job) and ``wal/`` (one shard journal per running job, owned by the
    service's executor).  All public methods take the queue lock; none of
    them do campaign work.
    """

    def __init__(
        self,
        state_dir: str | Path,
        quantum: int = DEFAULT_QUANTUM,
        weights: dict[str, float] | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.wal_dir = self.state_dir / "wal"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.obs = obs if obs is not None else Observability()
        self._lock = threading.Lock()
        self._drr = DeficitRoundRobin(quantum=quantum, weights=weights)
        self._records: dict[str, JobRecord] = {}
        self._next_seq = 0

    # -- persistence --------------------------------------------------------
    def _path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def wal_path(self, job_id: str) -> Path:
        """Where the job's shard journal lives while it runs."""
        return self.wal_dir / f"{job_id}.wal"

    def _persist(self, record: JobRecord) -> None:
        save_json(record.to_dict(), self._path(record.job_id))

    def _gauge_depth(self) -> None:
        self.obs.metrics.set_gauge("serve.queue.depth", float(len(self._drr)))

    # -- submission and dispatch -------------------------------------------
    def submit(
        self, spec: JobSpec, tenant: str = "default", priority: int = 0
    ) -> JobRecord:
        """Persist and enqueue one job; returns its immutable record."""
        spec.validate()
        if not tenant:
            raise ServeError("tenant id must be non-empty")
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            record = JobRecord(
                job_id=f"j{seq:06d}",
                seq=seq,
                tenant=tenant,
                priority=int(priority),
                spec=spec,
                state="queued",
                submitted_at=time.time(),
            )
            self._persist(record)
            self._records[record.job_id] = record
            self._drr.push(
                QueuedJob(
                    job_id=record.job_id,
                    tenant=tenant,
                    cost=spec.scale,
                    priority=record.priority,
                    seq=seq,
                )
            )
            self.obs.metrics.inc("serve.jobs.submitted")
            self._gauge_depth()
            return record

    def pop_next(self) -> JobRecord | None:
        """Dispatch the next job per DRR: marks it ``running`` durably."""
        with self._lock:
            queued = self._drr.pop()
            if queued is None:
                return None
            record = self._records[queued.job_id]
            record = replace(
                record,
                state="running",
                started_at=time.time(),
                attempts=record.attempts + 1,
            )
            self._persist(record)
            self._records[record.job_id] = record
            self._gauge_depth()
            return record

    def finish(self, job_id: str, error: str | None = None) -> JobRecord:
        """Mark a running job terminal (``completed`` or ``failed``)."""
        with self._lock:
            record = self._records[job_id]
            record = replace(
                record,
                state="failed" if error is not None else "completed",
                finished_at=time.time(),
                error=error,
            )
            self._persist(record)
            self._records[job_id] = record
            self.obs.metrics.inc(
                "serve.jobs.failed" if error else "serve.jobs.completed"
            )
            return record

    # -- queries ------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        """One job's record; unknown ids raise a 404-mapped ServeError."""
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise ServeError(f"no such job: {job_id}", status=404)
        return record

    def jobs(self, tenant: str | None = None) -> list[JobRecord]:
        """All records (optionally one tenant's), in submission order."""
        with self._lock:
            records = sorted(self._records.values(), key=lambda r: r.seq)
        if tenant is not None:
            records = [r for r in records if r.tenant == tenant]
        return records

    def snapshot(self) -> dict[str, Any]:
        """Scheduler and state-count view for the ``/v1/queue`` endpoint."""
        with self._lock:
            states = {state: 0 for state in JOB_STATES}
            completed_units: dict[str, int] = {}
            for record in self._records.values():
                states[record.state] += 1
                if record.state == "completed":
                    completed_units[record.tenant] = (
                        completed_units.get(record.tenant, 0)
                        + record.spec.scale
                    )
            return {
                "pending": len(self._drr),
                "quantum": self._drr.quantum,
                "states": states,
                "tenants": self._drr.snapshot(),
                "completed_units": dict(sorted(completed_units.items())),
            }

    # -- crash recovery -----------------------------------------------------
    def recover(self) -> list[JobRecord]:
        """Reload records from disk; re-enqueue everything unfinished.

        Returns the re-enqueued records (``queued`` and interrupted
        ``running`` jobs) in submission order.  A ``running`` record is
        reset to ``queued``; whether its next dispatch resumes from a
        journal or starts fresh is the service's call
        (:meth:`~repro.serve.service.CampaignService.start`).  Unreadable
        records are skipped with a counter bump rather than blocking
        startup — the atomic-write discipline makes them unexpected.
        """
        requeued: list[JobRecord] = []
        with self._lock:
            for path in sorted(self.jobs_dir.glob("*.json")):
                try:
                    record = JobRecord.from_dict(load_json(path))
                except (PersistError, ConfigurationError, KeyError):
                    self.obs.metrics.inc("serve.jobs.unreadable")
                    continue
                self._records[record.job_id] = record
                self._next_seq = max(self._next_seq, record.seq + 1)
            for record in sorted(
                self._records.values(), key=lambda r: r.seq
            ):
                if record.finished:
                    continue
                if record.state == "running":
                    record = replace(record, state="queued")
                    self._persist(record)
                    self._records[record.job_id] = record
                self._drr.push(
                    QueuedJob(
                        job_id=record.job_id,
                        tenant=record.tenant,
                        cost=record.spec.scale,
                        priority=record.priority,
                        seq=record.seq,
                    )
                )
                self.obs.metrics.inc("serve.jobs.recovered")
                requeued.append(record)
            self._gauge_depth()
        return requeued

"""The HTTP front end: routes requests onto a :class:`CampaignService`.

Endpoints (all JSON; see docs/serve.md for the operator guide):

==========  ==============================  =================================
``GET``     ``/healthz``                    liveness + queue depth
``POST``    ``/v1/campaigns``               submit a campaign job (202)
``GET``     ``/v1/jobs``                    list jobs (``?tenant=`` filter)
``GET``     ``/v1/jobs/<id>``               one job's state + shard progress
``GET``     ``/v1/jobs/<id>/result``        finished totals (409 until done)
``GET``     ``/v1/jobs/<id>/events``        chunked NDJSON progress stream
``GET``     ``/v1/queue``                   fairness snapshot (DRR state)
``GET``     ``/v1/stats``                   the service metrics registry
==========  ==============================  =================================

Service calls are brief lock-protected dict operations, so handlers call
them inline rather than hopping through an executor — measured in
``bench_serve``, that keeps a query under a millisecond end to end.
Campaign execution itself never runs on the event loop; it lives on the
service's worker threads.

The module is importable without binding anything; :func:`run_app` owns
the socket so tests and the bench can run the app in-process on an
ephemeral port.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any

from repro.errors import ServeError
from repro.obs import Observability
from repro.serve.http import (
    MAX_HEADER_BYTES,
    HttpRequest,
    error_response,
    json_response,
    read_request,
)
from repro.serve.queue import JobRecord
from repro.serve.service import CampaignService

__all__ = [
    "ServeApp",
    "run_app",
]

#: How often the events stream re-samples a job's progress.
EVENT_POLL_SECONDS = 0.05


def _job_view(record: JobRecord) -> dict[str, Any]:
    view = record.to_dict()
    view.pop("schema", None)
    return view


class ServeApp:
    """Route table + connection handler over one service instance."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service
        self.obs: Observability = service.obs

    # -- routing ------------------------------------------------------------
    def dispatch(self, request: HttpRequest) -> bytes:
        """Handle one non-streaming request; returns the response bytes."""
        segments = [s for s in request.path.split("/") if s]
        method = request.method
        if request.path == "/healthz" and method == "GET":
            return json_response(
                {"ok": True, "pending": self.service.queue.snapshot()["pending"]}
            )
        if segments[:2] == ["v1", "campaigns"] and len(segments) == 2:
            if method != "POST":
                raise ServeError("use POST to submit a campaign", status=405)
            record = self.service.submit(request.json())
            return json_response({"job": _job_view(record)}, status=202)
        if segments[:2] == ["v1", "jobs"]:
            if method != "GET":
                raise ServeError("jobs endpoints are read-only", status=405)
            if len(segments) == 2:
                tenant = request.query.get("tenant") or None
                return json_response(
                    {
                        "jobs": [
                            _job_view(r) for r in self.service.queue.jobs(tenant)
                        ]
                    }
                )
            if len(segments) == 3:
                return json_response(self.service.job_status(segments[2]))
            if len(segments) == 4 and segments[3] == "result":
                return json_response(self.service.result(segments[2]))
        if request.path == "/v1/queue" and method == "GET":
            return json_response(self.service.queue.snapshot())
        if request.path == "/v1/stats" and method == "GET":
            return json_response(self.service.stats())
        raise ServeError(
            f"no route for {method} {request.path}", status=404
        )

    # -- streaming ----------------------------------------------------------
    async def stream_events(
        self, request: HttpRequest, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        """Chunked NDJSON: one line per progress change, then terminal."""
        self.service.queue.get(job_id)  # 404 before committing to chunks
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        last: bytes | None = None
        while True:
            status = self.service.job_status(job_id)
            payload = json.dumps(
                {
                    "job_id": job_id,
                    "state": status["state"],
                    "shards": status["shards"],
                },
                sort_keys=True,
            ).encode("utf-8") + b"\n"
            if payload != last:
                writer.write(
                    f"{len(payload):x}\r\n".encode("latin-1")
                    + payload
                    + b"\r\n"
                )
                await writer.drain()
                last = payload
            if status["state"] in ("completed", "failed"):
                break
            await asyncio.sleep(EVENT_POLL_SECONDS)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- connection loop ----------------------------------------------------
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection: sequential requests until close/EOF."""
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ServeError as error:
                    self.obs.metrics.inc("serve.http.errors")
                    writer.write(error_response(error, close=True))
                    break
                if request is None:
                    break
                self.obs.metrics.inc("serve.http.requests")
                segments = [s for s in request.path.split("/") if s]
                if (
                    request.method == "GET"
                    and len(segments) == 4
                    and segments[:2] == ["v1", "jobs"]
                    and segments[3] == "events"
                ):
                    try:
                        await self.stream_events(request, writer, segments[2])
                    except ServeError as error:
                        self.obs.metrics.inc("serve.http.errors")
                        writer.write(error_response(error, close=True))
                    break  # the stream always ends the connection
                try:
                    response = self.dispatch(request)
                except ServeError as error:
                    self.obs.metrics.inc("serve.http.errors")
                    response = error_response(
                        error, close=not request.keep_alive
                    )
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def run_app(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: "asyncio.Future[int] | None" = None,
    install_signals: bool = False,
) -> None:
    """Bind, announce, and serve until cancelled (or signalled).

    ``port=0`` binds an ephemeral port; the bound port is announced on
    stdout (``serving on http://host:port``) and through ``ready`` so
    tests and the bench can connect without racing the log line.  With
    ``install_signals`` (the CLI path), SIGTERM/SIGINT trigger a graceful
    drain: the listener closes, running campaigns journal their progress
    and the service stops — ready to resume on the next start.
    """
    app = ServeApp(service)
    server = await asyncio.start_server(
        app.handle, host=host, port=port, limit=MAX_HEADER_BYTES
    )
    bound = server.sockets[0].getsockname()[1]
    print(f"serving on http://{host}:{bound}", flush=True)
    if ready is not None and not ready.done():
        ready.set_result(bound)
    stop = asyncio.Event()
    if install_signals:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
    try:
        async with server:
            await stop.wait()
    finally:
        service.stop()

"""A thin asyncio HTTP/1.1 layer: just enough protocol for the service.

The repo's no-heavy-deps rule extends to the service: no web framework,
no ASGI server — one connection handler on :mod:`asyncio` streams that
parses requests, keeps connections alive (and therefore pipelines: a
client may write several requests back to back and read the responses in
order, which is what lets ``bench_serve`` push a million requests through
a handful of sockets), and renders JSON responses with explicit
``Content-Length``.  Progress streaming uses chunked transfer encoding,
the one other piece of HTTP/1.1 the endpoints need.

Deliberately out of scope: TLS, compression, multipart, HTTP/2.  The
service binds loopback by default; anything fancier belongs in a reverse
proxy in front of it.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServeError

__all__ = [
    "MAX_BODY_BYTES",
    "HttpRequest",
    "read_request",
    "json_response",
    "error_response",
]

#: Largest accepted request body.  Submissions are a few hundred bytes;
#: anything near the cap is a client bug or abuse, refused with a 413.
MAX_BODY_BYTES = 1 << 20

#: Header-section cap passed to ``asyncio.start_server`` callers; a
#: request line plus headers larger than this is not one of ours.
MAX_HEADER_BYTES = 1 << 16

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


@dataclass
class HttpRequest:
    """One parsed request: method, split path, query and JSON body."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the connection survives this exchange (HTTP/1.1
        default, overridable with ``Connection: close``)."""
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict[str, Any]:
        """The body as a JSON object; malformed bodies map to a 400."""
        try:
            payload = json.loads(self.body or b"{}")
        except json.JSONDecodeError as error:
            raise ServeError(f"body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ServeError("body must be a JSON object")
        return payload


def _parse_query(raw: str) -> dict[str, str]:
    query: dict[str, str] = {}
    for pair in raw.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        query[key] = value
    return query


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`~repro.errors.ServeError` for malformed framing — the
    caller answers with the error status and closes the connection, since
    the stream position is no longer trustworthy.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise ServeError("connection closed mid-request") from error
    except asyncio.LimitOverrunError as error:
        raise ServeError("request headers too large", status=413) from error
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ServeError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    path, _, raw_query = target.partition("?")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ServeError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    try:
        n_body = int(length)
    except ValueError as error:
        raise ServeError(f"bad Content-Length: {length!r}") from error
    if n_body < 0 or n_body > MAX_BODY_BYTES:
        raise ServeError(
            f"body of {n_body} bytes exceeds the {MAX_BODY_BYTES} cap",
            status=413,
        )
    body = await reader.readexactly(n_body) if n_body else b""
    return HttpRequest(
        method=method.upper(),
        path=path,
        query=_parse_query(raw_query),
        headers=headers,
        body=body,
    )


def _render(status: int, content_type: str, body: bytes, close: bool) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


def json_response(
    payload: dict[str, Any], status: int = 200, close: bool = False
) -> bytes:
    """A complete JSON response, ready to write."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _render(status, "application/json", body, close)


def error_response(error: ServeError, close: bool = False) -> bytes:
    """The JSON rendering of a service error."""
    return json_response(
        {"error": str(error)}, status=error.status, close=close
    )

"""Deterministic random-number utilities.

Every stochastic component in the library takes an explicit seed or an
explicit :class:`numpy.random.Generator`.  Nothing in :mod:`repro` touches
the global numpy RNG, so two runs with the same seeds produce identical
results — a prerequisite for a *repeatable* benchmark, which is itself one of
the metric properties the paper analyzes.

The helpers here implement a tiny, explicit substream scheme: a parent seed
plus a string key deterministically yields a child generator.  This lets a
campaign hand independent streams to each tool/workload pair without the
fragile "pass the same Generator everywhere and pray about call order"
pattern.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["rng_from_seed", "derive_seed", "spawn"]

_MAX_SEED = 2**63 - 1


def rng_from_seed(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an integer seed, an existing generator (returned unchanged), or
    ``None`` (fresh OS entropy — only sensible in exploratory use, never in
    benchmark harnesses).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(seed: int, key: str) -> int:
    """Deterministically derive a child seed from ``seed`` and a string key.

    Uses SHA-256 over the parent seed and the key, so children for different
    keys are statistically independent and stable across platforms and
    Python hash randomization.
    """
    digest = hashlib.sha256(f"{seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _MAX_SEED


def spawn(seed: int, key: str) -> np.random.Generator:
    """Return a child generator derived from ``seed`` and ``key``."""
    return np.random.default_rng(derive_seed(seed, key))

"""Bench R11 — regenerate the analytical-vs-MCDA agreement table.

Paper analogue: the closing validation ("the MCDA algorithm together with
experts' judgment validates the conclusions").  Shape claims: the MCDA
winner sits in the analytical top-5 in every scenario, top-1 matches in at
least two, and the headline conclusion table reads like the abstract —
precision/recall adequate somewhere, seldom-used alternatives elsewhere.
"""

from __future__ import annotations

from repro.bench.experiments import r11_agreement
from repro.metrics.registry import core_candidates


def test_bench_r11_agreement(benchmark, save_result, engine_context):
    result = benchmark.pedantic(
        lambda: r11_agreement.run(context=engine_context), rounds=1, iterations=1
    )
    save_result("R11", result.render())
    print()
    print(result.render())

    assert result.data["n_scenarios"] == 4
    assert result.data["winner_in_top5"] == 4
    assert result.data["top1_matches"] >= 2

    analytical = result.data["analytical"]
    registry = core_candidates()
    # Familiar metrics win somewhere...
    familiar_wins = {analytical["critical"][0], analytical["triage"][0]}
    assert familiar_wins & {"REC", "PRE", "F0.5", "ACC"}
    # ...and seldom-used alternatives win elsewhere (abstract's last claim).
    for key in ("balanced", "audit"):
        winner = registry.get(analytical[key][0])
        assert winner.info.popularity < 0.5, (key, winner.symbol)

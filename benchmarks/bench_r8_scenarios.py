"""Bench R8 — regenerate the scenario definitions and analytical adequacy.

Paper analogue: the step-3 analysis selecting the most adequate metric per
scenario.  Shape claims: recall-family wins the critical scenario, the
exactness family wins triage, composites win balanced/audit — and the four
scenarios do not share one winner.
"""

from __future__ import annotations

from repro.bench.experiments import r8_scenarios


def test_bench_r8_scenarios(benchmark, save_result):
    result = benchmark.pedantic(r8_scenarios.run, rounds=1, iterations=1)
    save_result("R8", result.render())
    print()
    print(result.sections["summary"])

    rankings = result.data["rankings"]
    assert rankings["critical"][0] == "REC"
    assert rankings["triage"][0] in {"PRE", "F0.5", "MRK", "SPC", "ACC", "KAP"}
    assert rankings["triage"][0] not in {"REC", "F2"}
    assert rankings["balanced"][0] in {"F1", "MCC", "INF", "GM", "BAC", "JAC", "KAP", "F2"}
    assert rankings["audit"][0] in {"MCC", "INF", "MRK", "KAP", "BAC", "GM", "JAC", "F1", "F2"}
    assert len({r[0] for r in rankings.values()}) >= 3

    adequacy = result.data["adequacy"]
    # The winning metric correlates strongly with the scenario's economics.
    for key, ranking in rankings.items():
        assert adequacy[key][ranking[0]] > 0.7, key

"""Ablation — does the scenario conclusion depend on the MCDA method?

The paper validates with one MCDA algorithm; a skeptic asks whether the
conclusion is an artifact of that choice.  This ablation ranks the core
candidates per scenario with four methods — AHP (eigenvector), AHP
(geometric mean), SAW over AHP local priorities, TOPSIS, ELECTRE I net
flow, and PROMETHEE II — and measures cross-method winner agreement.
"""

from __future__ import annotations

from repro.bench.experiments.r2_properties import run as run_r2
from repro.experts.elicitation import elicit_hierarchy
from repro.experts.panel import default_panel
from repro.mcda.electre import electre_i
from repro.mcda.promethee import promethee_ii
from repro.mcda.saw import simple_additive_weighting
from repro.mcda.topsis import topsis
from repro.reporting.tables import format_table
from repro.scenarios.scenarios import canonical_scenarios


def run_ablation(seed: int = 2015, n_resamples: int = 80):
    properties_matrix = run_r2(seed=seed, n_resamples=n_resamples).data["matrix"]
    # Restrict to the core candidates (the screened set the scenarios rank).
    from repro.metrics.registry import core_candidates

    core = set(core_candidates().symbols)
    panel = default_panel(seed=seed)

    rows = []
    winners_by_scenario = {}
    for scenario in canonical_scenarios():
        hierarchy = elicit_hierarchy(scenario, properties_matrix, panel)
        weights = hierarchy.criteria.priorities()
        local = {c: m.priorities() for c, m in hierarchy.alternatives.items()}
        alternatives = [a for a in hierarchy.alternative_labels if a in core]
        local_core = {
            criterion: {a: scores[a] for a in alternatives}
            for criterion, scores in local.items()
        }

        winners = {
            "ahp-eig": hierarchy.compose("eigenvector").best,
            "ahp-geo": hierarchy.compose("geometric").best,
            "saw": simple_additive_weighting(
                alternatives, local_core, weights, normalize="none"
            ).best,
            "topsis": topsis(alternatives, local_core, weights).best,
            "electre": electre_i(
                alternatives,
                local_core,
                weights,
                concordance_threshold=0.6,
                discordance_threshold=0.5,
            ).best,
            "promethee": promethee_ii(alternatives, local_core, weights).best,
        }
        winners_by_scenario[scenario.key] = winners
        agreement = max(
            sum(1 for w in winners.values() if w == candidate)
            for candidate in set(winners.values())
        ) / len(winners)
        rows.append(
            [
                scenario.key,
                winners["ahp-eig"],
                winners["ahp-geo"],
                winners["saw"],
                winners["topsis"],
                winners["electre"],
                winners["promethee"],
                agreement,
            ]
        )
    table = format_table(
        headers=[
            "scenario", "AHP (eig)", "AHP (geo)", "SAW", "TOPSIS", "ELECTRE",
            "PROMETHEE", "modal agreement",
        ],
        rows=rows,
        title="Ablation: scenario winner across six MCDA syntheses",
    )
    return table, winners_by_scenario


def test_bench_ablation_mcda_methods(benchmark, save_result):
    table, winners = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_result("ablation_mcda", table)
    print()
    print(table)

    for key, per_method in winners.items():
        # The two AHP extraction methods must agree outright.
        assert per_method["ahp-eig"] == per_method["ahp-geo"], key
        # SAW over local priorities *is* the AHP composition.
        assert per_method["saw"] == per_method["ahp-eig"], key
        # And the modal winner carries at least half the six methods
        # (the additive family always votes as a bloc; the outranking
        # methods legitimately dissent within the same metric cluster).
        modal = max(
            set(per_method.values()),
            key=lambda candidate: sum(1 for w in per_method.values() if w == candidate),
        )
        votes = sum(1 for w in per_method.values() if w == modal)
        assert votes >= 3, (key, per_method)

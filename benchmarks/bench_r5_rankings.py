"""Bench R5 — regenerate the metric-induced tool rankings and tau matrix.

Paper analogue: the table showing each metric orders the benchmarked tools
differently, quantified by inter-metric Kendall tau.  Shape claims: rankings
disagree materially (min off-diagonal tau well below 1) without being random
(positive mean tau) — "choosing the metric chooses the winner".
"""

from __future__ import annotations

from repro.bench.experiments import r5_rankings


def test_bench_r5_rankings(benchmark, save_result, engine_context):
    result = benchmark(lambda: r5_rankings.run(context=engine_context))
    save_result("R5", result.render())
    print()
    print(result.render())

    assert result.data["min_offdiag_tau"] < 0.75
    assert result.data["mean_offdiag_tau"] > 0.2

    ranks = result.data["ranks"]
    # Recall and precision crown different champions.
    recall_winner = min(
        range(len(result.data["tool_names"])), key=lambda i: ranks["REC"][i]
    )
    precision_winner = min(
        range(len(result.data["tool_names"])), key=lambda i: ranks["PRE"][i]
    )
    assert recall_winner != precision_winner

"""Bench — the experiment engine itself: cache warmth and parallelism.

Times ``run all`` through the engine three ways — cold artifact store,
warm re-run on the same store, and a cold parallel run — and prints a
one-line summary per comparison.  Shape claims: a warm store re-runs the
whole suite without a single artifact miss, and a parallel run is
byte-identical to the serial one (the engine's core determinism contract).
"""

from __future__ import annotations

import time

from repro.bench.engine import ArtifactStore, run_experiments

ALL_IDS = [f"R{i}" for i in range(1, 20)]
SEED = 2015
JOBS = 4


def _timed(**kwargs):
    started = time.perf_counter()
    run = run_experiments(ALL_IDS, seed=SEED, **kwargs)
    return run, time.perf_counter() - started


def test_bench_engine_cold_warm_parallel(save_result):
    store = ArtifactStore()
    cold, cold_s = _timed(store=store, jobs=1)
    warm, warm_s = _timed(store=store, jobs=1)
    parallel, parallel_s = _timed(jobs=JOBS)

    # A warm store replays every experiment from cache: zero misses.
    assert warm.manifest.cache_counts()["miss"] == 0
    assert warm_s < cold_s
    # The reference campaign is computed exactly once per (seed, n_units).
    campaign = cold.manifest.cache_counts("campaign:reference[n_units=600")
    assert campaign["miss"] == 1
    # Parallelism changes the wall clock only, never the reports.
    for key in ALL_IDS:
        assert parallel.results[key].render() == cold.results[key].render()

    lines = [
        f"engine run all (seed {SEED}): cold {cold_s:.1f}s, "
        f"warm cache {warm_s:.2f}s "
        f"({cold.manifest.cache_counts()['miss']} misses -> 0)",
        f"engine run all (seed {SEED}): serial {cold_s:.1f}s, "
        f"jobs={JOBS} {parallel_s:.1f}s, reports byte-identical",
    ]
    for line in lines:
        print(line)
    save_result("engine", "\n".join(lines))


if __name__ == "__main__":
    import sys

    sys.exit(__import__("pytest").main([__file__, "-q", "-s"]))

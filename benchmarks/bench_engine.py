"""Bench — the experiment engine itself: cache warmth, parallelism, kernels.

Times ``run all`` through the engine three ways — cold artifact store,
warm re-run on the same store, and a cold parallel run — and prints a
one-line summary per comparison.  Shape claims: a warm store re-runs the
whole suite without a single artifact miss, and a parallel run is
byte-identical to the serial one (the engine's core determinism contract).

A second bench measures the observability layer itself: best-of-three cold
runs with the tracer enabled vs disabled.  The instrumentation must stay
cheap enough to leave on (<5% wall-time overhead is the design target; the
assert allows slack for machine noise).

Two perf benches cover the vectorized paths: bootstrap throughput compares
the scalar reference loop (``bootstrap_metric_scalar``) against the batch
kernels over the full metric catalog and asserts identical statistics, and
the executor bench compares ``--executor thread`` against ``process`` on a
bootstrap-heavy subset and asserts identical reports.

Every bench also folds its numbers into ``results/BENCH_engine.json``
(schema-tagged, machine-readable) so perf claims in the docs trace to
committed measurements.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench.engine import ArtifactStore, run_experiments
from repro.obs import Observability

ALL_IDS = [f"R{i}" for i in range(1, 20)]
SEED = 2015
JOBS = 4
#: Subset used for the tracing-overhead comparison: covers the shared
#: campaign, metric loops and dependent experiments without paying for the
#: slow bootstrap-heavy ids three times over.
OVERHEAD_IDS = ["R1", "R3", "R4", "R5", "R12", "R13"]
#: Subset used for the thread-vs-process comparison: independent,
#: CPU-bound experiments where worker processes can actually help.
EXECUTOR_IDS = ["R2", "R7", "R18", "R19"]

BENCH_JSON = Path(__file__).resolve().parent.parent / "results" / "BENCH_engine.json"
BENCH_JSON_SCHEMA = "repro/bench-engine@1"


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one bench's numbers into the machine-readable dump.

    Read-update-write so a partial run (one bench alone) refreshes its own
    section without clobbering the others.
    """
    data: dict = {"schema": BENCH_JSON_SCHEMA}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            existing = {}
        if existing.get("schema") == BENCH_JSON_SCHEMA:
            data = existing
    data[section] = payload
    BENCH_JSON.parent.mkdir(exist_ok=True)
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _timed(**kwargs):
    started = time.perf_counter()
    run = run_experiments(ALL_IDS, seed=SEED, **kwargs)
    return run, time.perf_counter() - started


def test_bench_engine_cold_warm_parallel(save_result):
    store = ArtifactStore()
    cold, cold_s = _timed(store=store, jobs=1)
    warm, warm_s = _timed(store=store, jobs=1)
    parallel, parallel_s = _timed(jobs=JOBS)

    # A warm store replays every experiment from cache: zero misses.
    assert warm.manifest.cache_counts()["miss"] == 0
    assert warm_s < cold_s
    # The reference campaign is computed exactly once per (seed, n_units).
    campaign = cold.manifest.cache_counts("campaign:reference[n_units=600")
    assert campaign["miss"] == 1
    # Parallelism changes the wall clock only, never the reports.
    for key in ALL_IDS:
        assert parallel.results[key].render() == cold.results[key].render()

    lines = [
        f"engine run all (seed {SEED}): cold {cold_s:.1f}s, "
        f"warm cache {warm_s:.2f}s "
        f"({cold.manifest.cache_counts()['miss']} misses -> 0)",
        f"engine run all (seed {SEED}): serial {cold_s:.1f}s, "
        f"jobs={JOBS} {parallel_s:.1f}s, reports byte-identical",
    ]
    for line in lines:
        print(line)
    save_result("engine", "\n".join(lines))
    _update_bench_json(
        "suite",
        {
            "experiments": len(ALL_IDS),
            "seed": SEED,
            "cold_seconds": round(cold_s, 3),
            "warm_seconds": round(warm_s, 3),
            "parallel_jobs": JOBS,
            "parallel_seconds": round(parallel_s, 3),
        },
    )


def test_bench_bootstrap_throughput(save_result):
    """Vectorized bootstrap vs the scalar reference loop, full catalog.

    Same seeds feed both paths, so the summaries must be *identical* — the
    batch resampler draws the very same multinomial stream the per-resample
    loop does.  The speedup floor is deliberately conservative (shared CI
    machines are noisy); the measured number, typically well past the 10x
    design target, is what lands in the results files.
    """
    from repro._rng import derive_seed
    from repro.metrics.confusion import ConfusionMatrix
    from repro.metrics.registry import default_registry
    from repro.stats.bootstrap import bootstrap_metric, bootstrap_metric_scalar

    registry = default_registry()
    cm = ConfusionMatrix(tp=40, fp=25, fn=20, tn=515)
    n_resamples = 200

    def catalog_pass(fn):
        started = time.perf_counter()
        summaries = [
            fn(
                metric,
                cm,
                n_resamples=n_resamples,
                seed=derive_seed(SEED, f"bench:{metric.symbol}"),
            )
            for metric in registry
        ]
        return summaries, time.perf_counter() - started

    scalar_s = batch_s = float("inf")
    scalar_summaries = batch_summaries = None
    for _ in range(3):
        summaries, elapsed = catalog_pass(bootstrap_metric_scalar)
        if elapsed < scalar_s:
            scalar_s, scalar_summaries = elapsed, summaries
        summaries, elapsed = catalog_pass(bootstrap_metric)
        if elapsed < batch_s:
            batch_s, batch_summaries = elapsed, summaries

    # Identical statistics, not merely close: same seed -> same stream ->
    # same summary, NaN fields included (hence repr comparison).
    assert [repr(s) for s in scalar_summaries] == [
        repr(s) for s in batch_summaries
    ]
    speedup = scalar_s / batch_s
    resamples = len(registry) * n_resamples
    assert speedup >= 3.0, (
        f"batch bootstrap only {speedup:.1f}x faster than the scalar loop "
        f"(scalar {scalar_s:.3f}s, batch {batch_s:.3f}s) — expected >=10x "
        f"on an unloaded machine"
    )

    line = (
        f"bootstrap {len(registry)} metrics x {n_resamples} resamples "
        f"(best of 3): scalar {scalar_s:.3f}s, batch {batch_s:.3f}s "
        f"({speedup:.1f}x, {resamples / batch_s:,.0f} resamples/s)"
    )
    print(line)
    save_result("engine_bootstrap_throughput", line)
    _update_bench_json(
        "bootstrap",
        {
            "metrics": len(registry),
            "n_resamples": n_resamples,
            "scalar_seconds": round(scalar_s, 4),
            "batch_seconds": round(batch_s, 4),
            "speedup": round(speedup, 1),
            "resamples_per_second": round(resamples / batch_s),
        },
    )


def test_bench_executor_thread_vs_process(save_result):
    """``--executor process`` on a CPU-bound subset, against threads.

    The contract under test is identity: both executors must render the
    same reports at the same seed.  The wall-clock ratio is recorded, not
    asserted — on a single-core runner process workers cannot win, and the
    committed numbers are what document the multi-core speedup.
    """

    def timed(executor):
        started = time.perf_counter()
        run = run_experiments(EXECUTOR_IDS, seed=SEED, jobs=JOBS, executor=executor)
        return run, time.perf_counter() - started

    thread_run, thread_s = timed("thread")
    process_run, process_s = timed("process")
    for key in EXECUTOR_IDS:
        assert (
            process_run.results[key].render() == thread_run.results[key].render()
        )

    speedup = thread_s / process_s
    line = (
        f"executor {'+'.join(EXECUTOR_IDS)} (jobs={JOBS}, "
        f"{os.cpu_count()} cores): thread {thread_s:.2f}s, "
        f"process {process_s:.2f}s ({speedup:.2f}x), reports byte-identical"
    )
    print(line)
    save_result("engine_executor", line)
    _update_bench_json(
        "executor",
        {
            "experiments": EXECUTOR_IDS,
            "jobs": JOBS,
            "cpu_count": os.cpu_count(),
            "thread_seconds": round(thread_s, 3),
            "process_seconds": round(process_s, 3),
            "speedup": round(speedup, 2),
        },
    )


def test_bench_tracing_overhead(save_result):
    def best_of(n: int, traced: bool) -> tuple[float, Observability]:
        best, best_obs = float("inf"), None
        for _ in range(n):
            obs = Observability.enabled() if traced else Observability()
            started = time.perf_counter()
            run_experiments(OVERHEAD_IDS, seed=SEED, obs=obs)
            elapsed = time.perf_counter() - started
            if elapsed < best:
                best, best_obs = elapsed, obs
        return best, best_obs

    plain_s, plain_obs = best_of(3, traced=False)
    traced_s, traced_obs = best_of(3, traced=True)
    overhead = (traced_s - plain_s) / plain_s

    # The disabled tracer records nothing; the enabled one covers the run.
    assert len(plain_obs.tracer) == 0
    names = {record.name for record in traced_obs.tracer.spans}
    assert "engine.run" in names and "artifact.compute" in names
    # Design target is <5%; allow slack for shared-machine timing noise,
    # but an instrumentation regression (an order of magnitude) still trips.
    assert overhead < 0.25, (
        f"tracing overhead {overhead:.1%} (plain {plain_s:.2f}s, "
        f"traced {traced_s:.2f}s) — expected ~<5%"
    )

    line = (
        f"engine tracing overhead ({len(OVERHEAD_IDS)} experiments, "
        f"best of 3): off {plain_s:.2f}s, on {traced_s:.2f}s "
        f"({overhead:+.1%}, {len(traced_obs.tracer)} spans recorded)"
    )
    print(line)
    save_result("engine_tracing_overhead", line)
    _update_bench_json(
        "tracing",
        {
            "experiments": len(OVERHEAD_IDS),
            "off_seconds": round(plain_s, 3),
            "on_seconds": round(traced_s, 3),
            "overhead_fraction": round(overhead, 4),
        },
    )


if __name__ == "__main__":
    import sys

    sys.exit(__import__("pytest").main([__file__, "-q", "-s"]))

"""Bench — the experiment engine itself: cache warmth, parallelism, kernels.

Times ``run all`` through the engine three ways — cold artifact store,
warm re-run on the same store, and a cold parallel run — and prints a
one-line summary per comparison.  Shape claims: a warm store re-runs the
whole suite without a single artifact miss, and a parallel run is
byte-identical to the serial one (the engine's core determinism contract).

A second bench measures the observability layer itself: interleaved
sharded-campaign runs with the tracer enabled vs disabled.  The
instrumentation must stay cheap enough to leave on — <5% wall-time
overhead, *enforced* (the ring-lane tracer is what makes the target
holdable without slack).

Three perf benches cover the parallel rails: bootstrap throughput compares
the scalar reference loop (``bootstrap_metric_scalar``) against the batch
kernels over the full metric catalog and asserts identical statistics; the
executor bench compares ``--executor thread`` against ``process`` on a
bootstrap-heavy subset and asserts identical reports; and the transport
bench times a sharded campaign across thread/process × pickle/shm and
asserts byte-identical cells.  Multi-core speedup assertions are skipped
(with a logged reason) when ``cpu_count < 2`` — every recorded section
carries ``cpu_count`` so single-core numbers read as what they are.

Every bench also folds its numbers into ``results/BENCH_engine.json``
(schema-tagged, machine-readable) so perf claims in the docs trace to
committed measurements.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench.engine import ArtifactStore, run_experiments
from repro.obs import Observability

ALL_IDS = [f"R{i}" for i in range(1, 20)]
SEED = 2015
JOBS = 4
#: Subset used for the thread-vs-process comparison: independent,
#: CPU-bound experiments where worker processes can actually help.
EXECUTOR_IDS = ["R2", "R7", "R18", "R19"]

BENCH_JSON = Path(__file__).resolve().parent.parent / "results" / "BENCH_engine.json"
BENCH_JSON_SCHEMA = "repro/bench-engine@1"


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one bench's numbers into the machine-readable dump.

    Read-update-write so a partial run (one bench alone) refreshes its own
    section without clobbering the others.
    """
    data: dict = {"schema": BENCH_JSON_SCHEMA}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            existing = {}
        if existing.get("schema") == BENCH_JSON_SCHEMA:
            data = existing
    data[section] = payload
    BENCH_JSON.parent.mkdir(exist_ok=True)
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    # Re-render every registered doc table fed by this dump, so a bench
    # run can never leave docs/ stale (check_docs would flag it).
    from repro.reporting.benchtables import bench_tables, refresh_doc

    root = BENCH_JSON.parent.parent
    for table in bench_tables():
        if table.results == "results/BENCH_engine.json":
            refresh_doc(table, root)


def _timed(**kwargs):
    started = time.perf_counter()
    run = run_experiments(ALL_IDS, seed=SEED, **kwargs)
    return run, time.perf_counter() - started


def test_bench_engine_cold_warm_parallel(save_result):
    store = ArtifactStore()
    cold, cold_s = _timed(store=store, jobs=1)
    warm, warm_s = _timed(store=store, jobs=1)
    parallel, parallel_s = _timed(jobs=JOBS)

    # A warm store replays every experiment from cache: zero misses.
    assert warm.manifest.cache_counts()["miss"] == 0
    assert warm_s < cold_s
    # The reference campaign is computed exactly once per (seed, n_units).
    campaign = cold.manifest.cache_counts("campaign:reference[n_units=600")
    assert campaign["miss"] == 1
    # Parallelism changes the wall clock only, never the reports.
    for key in ALL_IDS:
        assert parallel.results[key].render() == cold.results[key].render()

    lines = [
        f"engine run all (seed {SEED}): cold {cold_s:.1f}s, "
        f"warm cache {warm_s:.2f}s "
        f"({cold.manifest.cache_counts()['miss']} misses -> 0)",
        f"engine run all (seed {SEED}): serial {cold_s:.1f}s, "
        f"jobs={JOBS} {parallel_s:.1f}s, reports byte-identical",
    ]
    for line in lines:
        print(line)
    save_result("engine", "\n".join(lines))
    _update_bench_json(
        "suite",
        {
            "experiments": len(ALL_IDS),
            "seed": SEED,
            "cold_seconds": round(cold_s, 3),
            "warm_seconds": round(warm_s, 3),
            "parallel_jobs": JOBS,
            "parallel_seconds": round(parallel_s, 3),
        },
    )


def test_bench_bootstrap_throughput(save_result):
    """Vectorized bootstrap vs the scalar reference loop, full catalog.

    Same seeds feed both paths, so the summaries must be *identical* — the
    batch resampler draws the very same multinomial stream the per-resample
    loop does.  The speedup floor is deliberately conservative (shared CI
    machines are noisy); the measured number, typically well past the 10x
    design target, is what lands in the results files.
    """
    from repro._rng import derive_seed
    from repro.metrics.confusion import ConfusionMatrix
    from repro.metrics.registry import default_registry
    from repro.stats.bootstrap import bootstrap_metric, bootstrap_metric_scalar

    registry = default_registry()
    cm = ConfusionMatrix(tp=40, fp=25, fn=20, tn=515)
    n_resamples = 200

    def catalog_pass(fn):
        started = time.perf_counter()
        summaries = [
            fn(
                metric,
                cm,
                n_resamples=n_resamples,
                seed=derive_seed(SEED, f"bench:{metric.symbol}"),
            )
            for metric in registry
        ]
        return summaries, time.perf_counter() - started

    scalar_s = batch_s = float("inf")
    scalar_summaries = batch_summaries = None
    for _ in range(3):
        summaries, elapsed = catalog_pass(bootstrap_metric_scalar)
        if elapsed < scalar_s:
            scalar_s, scalar_summaries = elapsed, summaries
        summaries, elapsed = catalog_pass(bootstrap_metric)
        if elapsed < batch_s:
            batch_s, batch_summaries = elapsed, summaries

    # Identical statistics, not merely close: same seed -> same stream ->
    # same summary, NaN fields included (hence repr comparison).
    assert [repr(s) for s in scalar_summaries] == [
        repr(s) for s in batch_summaries
    ]
    speedup = scalar_s / batch_s
    resamples = len(registry) * n_resamples
    assert speedup >= 3.0, (
        f"batch bootstrap only {speedup:.1f}x faster than the scalar loop "
        f"(scalar {scalar_s:.3f}s, batch {batch_s:.3f}s) — expected >=10x "
        f"on an unloaded machine"
    )

    line = (
        f"bootstrap {len(registry)} metrics x {n_resamples} resamples "
        f"(best of 3): scalar {scalar_s:.3f}s, batch {batch_s:.3f}s "
        f"({speedup:.1f}x, {resamples / batch_s:,.0f} resamples/s)"
    )
    print(line)
    save_result("engine_bootstrap_throughput", line)
    _update_bench_json(
        "bootstrap",
        {
            "metrics": len(registry),
            "n_resamples": n_resamples,
            "scalar_seconds": round(scalar_s, 4),
            "batch_seconds": round(batch_s, 4),
            "speedup": round(speedup, 1),
            "resamples_per_second": round(resamples / batch_s),
        },
    )


def test_bench_executor_thread_vs_process(save_result):
    """``--executor process`` on a CPU-bound subset, against threads.

    The contract under test is identity: both executors must render the
    same reports at the same seed.  The wall-clock ratio is asserted only
    on multi-core machines — on a single core, process workers cannot win
    by construction, so the assertion is skipped with a logged reason and
    ``cpu_count`` rides prominently in every recorded artifact so a
    single-core number is never mistaken for a regression.
    """
    cpu_count = os.cpu_count() or 1

    def timed(executor):
        started = time.perf_counter()
        run = run_experiments(EXECUTOR_IDS, seed=SEED, jobs=JOBS, executor=executor)
        return run, time.perf_counter() - started

    thread_run, thread_s = timed("thread")
    process_run, process_s = timed("process")
    for key in EXECUTOR_IDS:
        assert (
            process_run.results[key].render() == thread_run.results[key].render()
        )

    speedup = thread_s / process_s
    if cpu_count >= 2:
        assert speedup >= 1.0, (
            f"process executor slower than threads on {cpu_count} cores "
            f"(thread {thread_s:.2f}s, process {process_s:.2f}s)"
        )
        note = ""
    else:
        note = (
            f" [speedup assertion skipped: cpu_count={cpu_count}, "
            f"a process win is impossible on one core]"
        )
    line = (
        f"executor {'+'.join(EXECUTOR_IDS)} (jobs={JOBS}, "
        f"cpu_count={cpu_count}): thread {thread_s:.2f}s, "
        f"process {process_s:.2f}s ({speedup:.2f}x), reports "
        f"byte-identical{note}"
    )
    print(line)
    save_result("engine_executor", line)
    _update_bench_json(
        "executor",
        {
            "experiments": EXECUTOR_IDS,
            "jobs": JOBS,
            "cpu_count": cpu_count,
            "thread_seconds": round(thread_s, 3),
            "process_seconds": round(process_s, 3),
            "speedup": round(speedup, 2),
            "speedup_asserted": cpu_count >= 2,
        },
    )


#: Sharded campaign used for the tracing-overhead measurement: big enough
#: that per-unit work dominates process startup, small enough to repeat.
TRACING_SCALE = 4_000
TRACING_SHARD_SIZE = 500

#: The enforced tracing-overhead ceiling.  This is the design target
#: itself, not a slacked stand-in: with the ring-lane tracer a traced
#: campaign must stay within 5% of an untraced one.
TRACING_OVERHEAD_GUARD = 0.05


def test_bench_tracing_overhead(save_result):
    """``--trace`` on a sharded campaign must cost <5%, enforced.

    Runs are interleaved (off, on, off, on, ...) so slow drift on a shared
    machine hits both sides equally, and each side takes its best time.
    """
    from repro.bench.engine.shards import run_sharded_campaign
    from repro.obs import Tracer

    def timed(traced: bool) -> tuple[float, Observability]:
        obs = Observability(tracer=Tracer(enabled=traced))
        started = time.perf_counter()
        run_sharded_campaign(
            scale=TRACING_SCALE,
            shard_size=TRACING_SHARD_SIZE,
            seed=SEED,
            jobs=1,
            executor="thread",
            obs=obs,
        )
        return time.perf_counter() - started, obs

    timed(False), timed(True)  # warm caches off both measurements
    plain_s = traced_s = float("inf")
    plain_obs = traced_obs = None
    for _ in range(4):
        elapsed, obs = timed(False)
        if elapsed < plain_s:
            plain_s, plain_obs = elapsed, obs
        elapsed, obs = timed(True)
        if elapsed < traced_s:
            traced_s, traced_obs = elapsed, obs
    overhead = (traced_s - plain_s) / plain_s

    # The disabled tracer records nothing; the enabled one covers the run.
    assert len(plain_obs.tracer) == 0
    names = {record.name for record in traced_obs.tracer.spans}
    assert "engine.shard_run" in names and "shard.evaluate" in names
    assert overhead < TRACING_OVERHEAD_GUARD, (
        f"tracing overhead {overhead:.1%} (plain {plain_s:.2f}s, "
        f"traced {traced_s:.2f}s) exceeds the enforced "
        f"{TRACING_OVERHEAD_GUARD:.0%} ceiling"
    )

    line = (
        f"tracing overhead ({TRACING_SCALE}-unit sharded campaign, "
        f"best of 4 interleaved): off {plain_s:.2f}s, on {traced_s:.2f}s "
        f"({overhead:+.1%}, {len(traced_obs.tracer)} spans recorded, "
        f"guard <{TRACING_OVERHEAD_GUARD:.0%})"
    )
    print(line)
    save_result("engine_tracing_overhead", line)
    _update_bench_json(
        "tracing",
        {
            "campaign_scale": TRACING_SCALE,
            "shard_size": TRACING_SHARD_SIZE,
            "off_seconds": round(plain_s, 3),
            "on_seconds": round(traced_s, 3),
            "overhead_fraction": round(overhead, 4),
            "guard_fraction": TRACING_OVERHEAD_GUARD,
        },
    )


#: Sharded campaign for the transport comparison.  ``BENCH_ENGINE_FULL=1``
#: grows it to the acceptance-criteria scale (100k units).
TRANSPORT_SCALE = (
    100_000 if os.environ.get("BENCH_ENGINE_FULL") else 20_000
)
TRANSPORT_SHARD_SIZE = 2_000


def test_bench_transport(save_result):
    """Thread vs process×{pickle, shm} on one sharded campaign.

    Two contracts: the cells of every configuration are identical (the
    transport moves bytes, never changes them), and on a multi-core
    machine the shared-memory process path beats threads by >=1.5x.  On a
    single core the speedup assertion is skipped (logged below) and the
    process path must merely stay close to threads — worker reuse and the
    columnar ring are what keep it from *losing*, which is exactly the
    regression this bench would catch.
    """
    from repro.bench.engine.shards import run_sharded_campaign
    from repro.bench.engine.transport import shutdown_cached_pools

    cpu_count = os.cpu_count() or 1
    configs = [
        ("thread", "pickle"),
        ("process", "pickle"),
        ("process", "shm"),
    ]

    def timed(executor: str, transport: str):
        started = time.perf_counter()
        run = run_sharded_campaign(
            scale=TRANSPORT_SCALE,
            shard_size=TRANSPORT_SHARD_SIZE,
            seed=SEED,
            jobs=JOBS,
            executor=executor,
            transport=transport,
        )
        return run, time.perf_counter() - started

    shutdown_cached_pools()  # cold start, then one warm-up lap per config
    for executor, transport in configs:
        run_sharded_campaign(
            scale=2_000,
            shard_size=TRANSPORT_SHARD_SIZE,
            seed=SEED,
            jobs=JOBS,
            executor=executor,
            transport=transport,
        )
    results = {}
    for executor, transport in configs:
        run, elapsed = timed(executor, transport)
        assert run.ok
        assert run.manifest.extra["transport"] == (
            transport if executor == "process" else "pickle"
        )
        results[(executor, transport)] = (run, elapsed)

    # Cells must be byte-identical across every executor x transport.
    reference = [
        record.cells
        for record in results[("thread", "pickle")][0].manifest.records
    ]
    for (executor, transport), (run, _) in results.items():
        assert [r.cells for r in run.manifest.records] == reference, (
            f"{executor}/{transport} produced different cells"
        )

    thread_s = results[("thread", "pickle")][1]
    pickle_s = results[("process", "pickle")][1]
    shm_s = results[("process", "shm")][1]
    shm_speedup = thread_s / shm_s
    if cpu_count >= 2:
        assert shm_speedup >= 1.5, (
            f"process+shm only {shm_speedup:.2f}x threads on {cpu_count} "
            f"cores (thread {thread_s:.2f}s, shm {shm_s:.2f}s) — "
            f"expected >=1.5x"
        )
        note = ""
    else:
        # One core: a process win is impossible; the contract degrades to
        # "never slower than threads" (generous noise slack).
        assert shm_s <= thread_s * 1.25, (
            f"process+shm {shm_s:.2f}s vs thread {thread_s:.2f}s on one "
            f"core — the process path must not lose to threads"
        )
        note = (
            f" [>=1.5x assertion skipped: cpu_count={cpu_count}, asserted "
            f"non-regression instead]"
        )
    line = (
        f"transport {TRANSPORT_SCALE}-unit campaign (jobs={JOBS}, "
        f"cpu_count={cpu_count}): thread {thread_s:.2f}s, "
        f"process+pickle {pickle_s:.2f}s, process+shm {shm_s:.2f}s "
        f"({shm_speedup:.2f}x vs thread), cells identical{note}"
    )
    print(line)
    save_result("engine_transport", line)
    _update_bench_json(
        "transport",
        {
            "campaign_scale": TRANSPORT_SCALE,
            "shard_size": TRANSPORT_SHARD_SIZE,
            "jobs": JOBS,
            "cpu_count": cpu_count,
            "thread_seconds": round(thread_s, 3),
            "process_pickle_seconds": round(pickle_s, 3),
            "process_shm_seconds": round(shm_s, 3),
            "shm_speedup_vs_thread": round(shm_speedup, 2),
            "cells_identical": True,
            "speedup_asserted": cpu_count >= 2,
        },
    )


if __name__ == "__main__":
    import sys

    sys.exit(__import__("pytest").main([__file__, "-q", "-s"]))

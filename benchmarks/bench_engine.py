"""Bench — the experiment engine itself: cache warmth, parallelism, tracing.

Times ``run all`` through the engine three ways — cold artifact store,
warm re-run on the same store, and a cold parallel run — and prints a
one-line summary per comparison.  Shape claims: a warm store re-runs the
whole suite without a single artifact miss, and a parallel run is
byte-identical to the serial one (the engine's core determinism contract).

A second bench measures the observability layer itself: best-of-three cold
runs with the tracer enabled vs disabled.  The instrumentation must stay
cheap enough to leave on (<5% wall-time overhead is the design target; the
assert allows slack for machine noise).
"""

from __future__ import annotations

import time

from repro.bench.engine import ArtifactStore, run_experiments
from repro.obs import Observability

ALL_IDS = [f"R{i}" for i in range(1, 20)]
SEED = 2015
JOBS = 4
#: Subset used for the tracing-overhead comparison: covers the shared
#: campaign, metric loops and dependent experiments without paying for the
#: slow bootstrap-heavy ids three times over.
OVERHEAD_IDS = ["R1", "R3", "R4", "R5", "R12", "R13"]


def _timed(**kwargs):
    started = time.perf_counter()
    run = run_experiments(ALL_IDS, seed=SEED, **kwargs)
    return run, time.perf_counter() - started


def test_bench_engine_cold_warm_parallel(save_result):
    store = ArtifactStore()
    cold, cold_s = _timed(store=store, jobs=1)
    warm, warm_s = _timed(store=store, jobs=1)
    parallel, parallel_s = _timed(jobs=JOBS)

    # A warm store replays every experiment from cache: zero misses.
    assert warm.manifest.cache_counts()["miss"] == 0
    assert warm_s < cold_s
    # The reference campaign is computed exactly once per (seed, n_units).
    campaign = cold.manifest.cache_counts("campaign:reference[n_units=600")
    assert campaign["miss"] == 1
    # Parallelism changes the wall clock only, never the reports.
    for key in ALL_IDS:
        assert parallel.results[key].render() == cold.results[key].render()

    lines = [
        f"engine run all (seed {SEED}): cold {cold_s:.1f}s, "
        f"warm cache {warm_s:.2f}s "
        f"({cold.manifest.cache_counts()['miss']} misses -> 0)",
        f"engine run all (seed {SEED}): serial {cold_s:.1f}s, "
        f"jobs={JOBS} {parallel_s:.1f}s, reports byte-identical",
    ]
    for line in lines:
        print(line)
    save_result("engine", "\n".join(lines))


def test_bench_tracing_overhead(save_result):
    def best_of(n: int, traced: bool) -> tuple[float, Observability]:
        best, best_obs = float("inf"), None
        for _ in range(n):
            obs = Observability.enabled() if traced else Observability()
            started = time.perf_counter()
            run_experiments(OVERHEAD_IDS, seed=SEED, obs=obs)
            elapsed = time.perf_counter() - started
            if elapsed < best:
                best, best_obs = elapsed, obs
        return best, best_obs

    plain_s, plain_obs = best_of(3, traced=False)
    traced_s, traced_obs = best_of(3, traced=True)
    overhead = (traced_s - plain_s) / plain_s

    # The disabled tracer records nothing; the enabled one covers the run.
    assert len(plain_obs.tracer) == 0
    names = {record.name for record in traced_obs.tracer.spans}
    assert "engine.run" in names and "artifact.compute" in names
    # Design target is <5%; allow slack for shared-machine timing noise,
    # but an instrumentation regression (an order of magnitude) still trips.
    assert overhead < 0.25, (
        f"tracing overhead {overhead:.1%} (plain {plain_s:.2f}s, "
        f"traced {traced_s:.2f}s) — expected ~<5%"
    )

    line = (
        f"engine tracing overhead ({len(OVERHEAD_IDS)} experiments, "
        f"best of 3): off {plain_s:.2f}s, on {traced_s:.2f}s "
        f"({overhead:+.1%}, {len(traced_obs.tracer)} spans recorded)"
    )
    print(line)
    save_result("engine_tracing_overhead", line)


if __name__ == "__main__":
    import sys

    sys.exit(__import__("pytest").main([__file__, "-q", "-s"]))

"""Ablation — why the workload needs sanitized decoys.

DESIGN.md's workload generator plants *sanitized decoys*: safe sites whose
code looks dangerous unless the tool models sanitizers.  This ablation
sweeps the decoy fraction from 0 to 1 and measures the precision gap between
the sanitizer-blind taint analyzer (SA-Flow) and the sanitizer-aware one
(SA-Deep).  Without decoys the two tool generations are indistinguishable on
precision; with them, the gap opens — the workload property that lets the
benchmark separate tools at all.
"""

from __future__ import annotations

from repro.bench.campaign import run_campaign, score_report
from repro.metrics import definitions as d
from repro.reporting.tables import format_table
from repro.tools.taint_analyzer import TaintAnalyzer
from repro.workload.generator import WorkloadConfig, generate_workload

FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def run_ablation(seed: int = 2015, n_units: int = 300):
    rows = []
    gaps = {}
    for fraction in FRACTIONS:
        workload = generate_workload(
            WorkloadConfig(
                n_units=n_units,
                decoy_fraction=fraction,
                cross_class_sanitizer_rate=0.0,
                seed=seed,
                name=f"decoys-{fraction:g}",
            )
        )
        blind = score_report(
            TaintAnalyzer(name="blind", trust_sanitizers=False).analyze(workload),
            workload.truth,
        )
        aware = score_report(
            TaintAnalyzer(name="aware", trust_sanitizers=True).analyze(workload),
            workload.truth,
        )
        blind_precision = d.PRECISION.value_or_nan(blind)
        aware_precision = d.PRECISION.value_or_nan(aware)
        gaps[fraction] = aware_precision - blind_precision
        rows.append([fraction, blind_precision, aware_precision, gaps[fraction]])
    table = format_table(
        headers=["decoy fraction", "sanitizer-blind precision",
                 "sanitizer-aware precision", "gap"],
        rows=rows,
        title="Ablation: sanitized-decoy density vs tool-generation separation",
    )
    return table, gaps


def test_bench_ablation_decoys(benchmark, save_result):
    table, gaps = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_result("ablation_decoys", table)
    print()
    print(table)

    # No decoys -> no separation; full decoys -> a wide gap.
    assert abs(gaps[0.0]) < 0.05
    assert gaps[1.0] > 0.3
    # The gap grows monotonically (up to small sampling noise).
    ordered = [gaps[f] for f in FRACTIONS]
    assert all(b >= a - 0.05 for a, b in zip(ordered, ordered[1:]))

"""Bench R16 — regenerate the seed-stability table.

Extension experiment: the per-scenario winners re-derived across independent
seeds.  Shape claims: the critical scenario's recall verdict is unanimous,
the MCDA winners are panel-stable, and the analytical winners — where they
move at all — stay inside the scenario-appropriate metric cluster.
"""

from __future__ import annotations

from repro.bench.experiments import r16_stability


def test_bench_r16_stability(benchmark, save_result):
    result = benchmark.pedantic(
        r16_stability.run,
        kwargs={"n_replicas": 12, "n_pools": 25, "n_resamples": 60},
        rounds=1,
        iterations=1,
    )
    save_result("R16", result.render())
    print()
    print(result.render())

    assert set(result.data["analytical_winners"]["critical"]) == {"REC"}
    for key, share in result.data["modal_shares"]["mcda"].items():
        assert share >= 0.75, key
    for key, share in result.data["modal_shares"]["analytical"].items():
        assert share >= 0.4, key

"""Bench R17 — regenerate the cross-workload ranking-stability table.

Extension experiment: per-metric stability of the tool ranking across
workload families varying prevalence and difficulty, plus the link to
discriminative power.  Shape claims: stability values are proper
correlations, the link to R7 separation is strongly positive, and
single-axis metrics with big gaps (SPC, PRE) out-stabilize the bunched
composites (F1, JAC).
"""

from __future__ import annotations

from repro.bench.experiments import r17_workload_stability


def test_bench_r17_workload_stability(benchmark, save_result):
    result = benchmark.pedantic(r17_workload_stability.run, rounds=1, iterations=1)
    save_result("R17", result.render())
    print()
    print(result.render())

    combined = result.data["combined"]
    assert all(-1.0 <= v <= 1.0 for v in combined.values())
    assert result.data["tau_vs_separation"] > 0.4
    assert combined["SPC"] > combined["F1"]
    assert combined["PRE"] > combined["JAC"]

"""Bench R10 — regenerate the MCDA weight-sensitivity figure.

Paper analogue: the robustness analysis of the expert-weighted conclusion.
Shape claims: per-scenario winner stability is high (the recommendation does
not hinge on exact expert numbers) and reversal factors, where they exist,
sit far from 1.
"""

from __future__ import annotations

import math

from repro.bench.experiments import r10_sensitivity


def test_bench_r10_sensitivity(benchmark, save_result):
    result = benchmark.pedantic(
        r10_sensitivity.run, kwargs={"n_resamples": 80}, rounds=1, iterations=1
    )
    save_result("R10", result.render())
    print()
    print(result.sections["summary"])

    stability = result.data["overall_stability"]
    assert set(stability) == {"critical", "triage", "balanced", "audit"}
    assert min(stability.values()) > 0.5
    assert sum(stability.values()) / len(stability) > 0.7

    # Any reversal requires at least a 15% weight distortion.
    for factors in result.data["reversal_factors"].values():
        for factor in factors.values():
            if factor is not None:
                assert abs(math.log(factor)) > math.log(1.15)

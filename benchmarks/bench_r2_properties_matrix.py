"""Bench R2 — regenerate the metric x good-metric-property matrix.

Paper analogue: the step-2 analysis table scoring every gathered metric
against the characteristics of a good metric.  Shape claims: unbounded
metrics are screened out; the classical candidates survive; the qualitative
and programmatic columns disagree in the documented places (MCC: strong
programmatically, weak on understandability/acceptance).
"""

from __future__ import annotations

from repro.bench.experiments import r2_properties


def test_bench_r2_properties_matrix(benchmark, save_result):
    result = benchmark.pedantic(
        r2_properties.run, kwargs={"n_resamples": 80}, rounds=1, iterations=1
    )
    save_result("R2", result.render())
    print()
    print(result.render())

    matrix = result.data["matrix"]
    screened = set(result.data["screened_out"])
    assert {"DOR", "LR+", "LR-", "LFT"} <= screened
    assert {"REC", "PRE", "F1", "MCC", "INF"} <= set(result.data["kept"])

    # The paper's tension: the best-behaved composites are the least known.
    assert matrix.score("MCC", "chance-corrected") > 0.9
    assert matrix.score("MCC", "accepted") < 0.3
    assert matrix.score("ACC", "accepted") > 0.7
    assert matrix.score("ACC", "chance-corrected") < 0.5
    # Orientation columns behave as designed.
    assert matrix.score("REC", "rewards detection") == 1.0
    assert matrix.score("SPC", "rewards silence") == 1.0

"""Bench R13 — regenerate the threshold-free ranking-metric analysis.

Extension experiment: AUC-ROC and average precision per tool, ROC curves,
and rank agreement with the fixed-threshold families.  Shape claims: every
reference tool ranks better than chance, and the ranking-metric ordering
diverges from the fixed-threshold composites (the two evaluation styles
answer different questions).
"""

from __future__ import annotations

from repro.bench.experiments import r13_ranking


def test_bench_r13_ranking(benchmark, save_result, engine_context):
    result = benchmark(lambda: r13_ranking.run(context=engine_context))
    save_result("R13", result.render())
    print()
    print(result.sections["values"])
    print()
    print(result.sections["agreement"])

    auc = result.data["auc"]
    assert all(0.5 < value <= 1.0 for value in auc.values())
    assert all(0.0 <= value <= 1.0 for value in result.data["ap"].values())
    assert result.data["taus"]["auc_vs_F1"] < 0.8

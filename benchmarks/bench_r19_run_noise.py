"""Bench R19 — regenerate the run-noise vs sampling-noise table.

Extension experiment: re-run each tool archetype on the same workload and
compare the score dispersion against the bootstrap sampling noise.  Shape
claims: static analysis is run-deterministic; the dynamic and simulated
tools carry run noise in the same regime as (but not wildly above) the
sampling noise, so single-run scores need error bars covering both.
"""

from __future__ import annotations

from repro.bench.experiments import r19_run_noise


def test_bench_r19_run_noise(benchmark, save_result):
    result = benchmark.pedantic(r19_run_noise.run, rounds=1, iterations=1)
    save_result("R19", result.render())
    print()
    print(result.render())

    summaries = result.data["summaries"]
    assert summaries["SA-Deep (static)"].std == 0.0
    for label in ("PT-Spider (dynamic)", "VS-Beta (simulated)"):
        summary = summaries[label]
        assert summary.std > 0.0
        assert 0.1 < summary.run_to_sampling_ratio < 2.0

"""Bench R18 — regenerate the scenario-optimal threshold analysis.

Extension experiment: expected cost vs confidence threshold per scenario
for two dial-worthy tools.  Shape claims: the critical scenario keeps the
scanner's dial at (or near) zero while the triage scenario dials it up, and
every reported optimum actually minimizes its sweep.
"""

from __future__ import annotations

from repro.bench.experiments import r18_thresholds


def test_bench_r18_thresholds(benchmark, save_result):
    result = benchmark.pedantic(r18_thresholds.run, rounds=1, iterations=1)
    save_result("R18", result.render())
    print()
    print(result.sections["optima_SA-Grep"])
    print()
    print(result.sections["optima_PT-Spider"])

    grep = result.data["optima"]["SA-Grep"]
    assert grep["critical"] <= grep["triage"]
    assert grep["triage"] > 0.0
    for per_scenario in result.data["optima"].values():
        assert all(0.0 <= t <= 1.0 for t in per_scenario.values())

"""Ablation — expert noise, panel aggregation, and consistency repair.

Two DESIGN.md choices are exercised here:

1. **AIJ aggregation**: individual experts get noisier (higher judgment
   sigma) and their matrices less consistent, yet the geometric-mean
   aggregate stays below Saaty's CR threshold far longer — the reason the
   reproduction (like AHP practice) aggregates judgments, not priorities.
2. **Repair as a fallback**: when even the aggregate breaks the threshold,
   minimal log-space repair restores admissibility with bounded judgment
   shifts.
"""

from __future__ import annotations

import numpy as np

from repro.experts.expert import Expert
from repro.experts.panel import aggregate_judgments
from repro.mcda.repair import repair_matrix
from repro.reporting.tables import format_table

SIGMAS = (0.05, 0.15, 0.3, 0.5, 0.8)
CRITERIA = {"c1": 0.3, "c2": 0.25, "c3": 0.2, "c4": 0.15, "c5": 0.1}


def run_ablation(seed: int = 2015, panel_size: int = 7):
    rows = []
    stats = {}
    for sigma in SIGMAS:
        experts = [
            Expert(name=f"e{i}", persona="p", noise_sigma=sigma, seed=seed + i)
            for i in range(panel_size)
        ]
        matrices = [e.judge(CRITERIA, context_key="ablation") for e in experts]
        individual_crs = [m.consistency_ratio for m in matrices]
        aggregate = aggregate_judgments(matrices)
        repaired = repair_matrix(aggregate, threshold=0.1)
        stats[sigma] = {
            "mean_individual_cr": float(np.mean(individual_crs)),
            "aggregate_cr": aggregate.consistency_ratio,
            "repair_alpha": repaired.alpha,
            "repair_shift": repaired.max_judgment_shift,
        }
        rows.append(
            [
                sigma,
                stats[sigma]["mean_individual_cr"],
                stats[sigma]["aggregate_cr"],
                stats[sigma]["repair_alpha"],
                stats[sigma]["repair_shift"],
            ]
        )
    table = format_table(
        headers=[
            "judgment sigma",
            "mean individual CR",
            "panel (AIJ) CR",
            "repair alpha needed",
            "max judgment shift",
        ],
        rows=rows,
        title="Ablation: expert noise vs consistency, aggregation and repair",
    )
    return table, stats


def test_bench_ablation_panel(benchmark, save_result):
    table, stats = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_result("ablation_panel", table)
    print()
    print(table)

    # Noise hurts individuals monotonically-ish...
    assert (
        stats[SIGMAS[-1]]["mean_individual_cr"]
        > stats[SIGMAS[0]]["mean_individual_cr"]
    )
    # ...but AIJ smooths: the aggregate beats the average individual at
    # every noise level.
    for sigma in SIGMAS:
        assert stats[sigma]["aggregate_cr"] <= stats[sigma]["mean_individual_cr"] + 1e-9
    # At low noise everything is admissible without repair.
    assert stats[SIGMAS[0]]["repair_alpha"] == 0.0
    # Repair, when invoked, always lands under the threshold.
    for sigma in SIGMAS:
        assert stats[sigma]["repair_shift"] >= 1.0

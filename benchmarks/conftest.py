"""Shared benchmark fixtures.

Every bench regenerates its experiment's table/figure and writes the
rendered text to ``results/<experiment>.txt`` so the reproduction artifacts
survive the run (pytest-benchmark reports the timings separately).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def engine_context():
    """A shared engine context so campaign-consuming benches time their own
    analysis, not the repeated regeneration of the reference campaign."""
    from repro.bench.engine import RunContext

    return RunContext()


@pytest.fixture
def save_result(results_dir):
    """Write an experiment's rendered report to the results directory."""

    def _save(experiment_id: str, rendered: str) -> None:
        path = results_dir / f"{experiment_id.lower()}.txt"
        path.write_text(rendered + "\n", encoding="utf-8")

    return _save

"""Bench R9 — regenerate the expert-validated AHP ranking per scenario.

Paper analogue: the MCDA validation table.  Shape claims: all aggregated
judgment matrices satisfy Saaty's CR < 0.1; the critical scenario's panel
picks recall; scenarios disagree on the winner; and the AHP winner is
confirmed by a cross-check method (SAW or TOPSIS top-3) in every scenario.
"""

from __future__ import annotations

from repro.bench.experiments import r9_ahp


def test_bench_r9_ahp(benchmark, save_result):
    result = benchmark.pedantic(
        r9_ahp.run, kwargs={"n_resamples": 80}, rounds=1, iterations=1
    )
    save_result("R9", result.render())
    print()
    print(result.sections["summary"])

    for key, cr in result.data["consistency"].items():
        assert cr < 0.1, key

    rankings = result.data["rankings"]
    assert rankings["critical"][0] == "REC"
    assert len({r[0] for r in rankings.values()}) >= 2

    for key, per_method in result.data["method_winners"].items():
        assert (
            per_method["ahp"] in per_method["saw_top3"]
            or per_method["ahp"] in per_method["topsis_top3"]
        ), (key, per_method)

"""Bench R1 — regenerate the metric catalog table.

Paper analogue: the "candidate metrics" table (metric, formula, range,
orientation, family).  Shape claims: the catalog holds the full 26-metric
candidate set including the seldom-used alternatives the paper highlights.
"""

from __future__ import annotations

from repro.bench.experiments import r1_catalog


def test_bench_r1_metric_catalog(benchmark, save_result):
    result = benchmark(r1_catalog.run)
    save_result("R1", result.render())
    print()
    print(result.render())

    assert result.data["n_metrics"] == 26
    symbols = set(result.data["symbols"])
    # The familiar metrics and the seldom-used alternatives both present.
    assert {"REC", "PRE", "ACC", "F1"} <= symbols
    assert {"MCC", "INF", "MRK", "DOR", "PT"} <= symbols

"""Bench R7 — regenerate the discriminative-power figure.

Paper analogue: the bootstrap confidence-interval analysis of how well each
metric separates the benchmarked tools.  Shape claims: separation fractions
are non-trivial for composite metrics on the reference suite, and the output
table ranks every core candidate.
"""

from __future__ import annotations

from repro.bench.experiments import r7_discrimination
from repro.metrics.registry import core_candidates


def test_bench_r7_discrimination(benchmark, save_result):
    result = benchmark.pedantic(
        r7_discrimination.run, kwargs={"n_resamples": 200}, rounds=1, iterations=1
    )
    save_result("R7", result.render())
    print()
    print(result.sections["separation"])

    separation = result.data["separation"]
    assert set(separation) == set(core_candidates().symbols)
    assert all(0.0 <= fraction <= 1.0 for fraction in separation.values())
    # At least one metric separates most tool pairs on this suite.
    assert max(separation.values()) > 0.5
    # And the ranking is non-degenerate: metrics differ in discrimination.
    assert max(separation.values()) - min(separation.values()) > 0.15

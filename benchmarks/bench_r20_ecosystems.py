"""Bench R20 — regenerate the cross-ecosystem metric-adequacy grid.

Extension analogue: the paper's scenario-dependent winner result, pushed
along a second axis.  Shape claims: every registered ecosystem produces a
full winner row, and at least one (scenario, ecosystem) cell picks a
different metric than the web-services baseline — the adequate metric is a
property of the deployment regime, not of the metric catalog.

Besides ``results/r20.txt``, this bench archives the machine-readable grid
as ``results/BENCH_ecosystems.json`` (schema ``repro/bench-ecosystems@1``)
for the CI schema check in ``tools/check_bench.py``.
"""

from __future__ import annotations

import json

from repro.bench.experiments import r20_ecosystems
from repro.workload.ecosystems import ecosystem_names

ECOSYSTEMS_JSON_SCHEMA = "repro/bench-ecosystems@1"


def test_bench_r20_ecosystems(benchmark, save_result, results_dir):
    result = benchmark.pedantic(r20_ecosystems.run, rounds=1, iterations=1)
    save_result("R20", result.render())
    print()
    print(result.sections["winner_grid"])

    winners = result.data["winners"]
    flips = result.data["flips"]
    names = ecosystem_names()
    assert result.data["ecosystems"] == names
    for scenario_key, row in winners.items():
        assert set(row) == set(names), scenario_key
    # The acceptance claim: the winning metric is ecosystem-dependent.
    assert len(flips) >= 1

    payload = {
        "schema": ECOSYSTEMS_JSON_SCHEMA,
        "ecosystems": result.data["ecosystems"],
        "winners": winners,
        "taus": result.data["taus"],
        "flips": flips,
    }
    out = results_dir / "BENCH_ecosystems.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

"""Bench R3 — regenerate the reference benchmarking campaign raw results.

Paper analogue: the campaign table (tool x TP/FP/FN/TN).  Shape claims: the
eight-tool suite spans the operating space the original campaigns reported —
a flag-everything scanner, precise-but-incomplete analyzers, quiet dynamic
testers.
"""

from __future__ import annotations

from repro.bench.experiments import r3_campaign
from repro.metrics import definitions as d


def test_bench_r3_campaign(benchmark, save_result):
    result = benchmark(r3_campaign.run)
    save_result("R3", result.render())
    print()
    print(result.render())

    campaign = result.data["campaign"]
    workload = result.data["workload"]
    assert len(campaign.results) == 8
    assert 0.10 < workload.prevalence < 0.20

    grep = campaign.confusion_for("SA-Grep")
    assert d.RECALL.compute(grep) == 1.0  # syntactic scanner misses nothing
    assert d.PRECISION.compute(grep) < 0.5  # and drowns in false alarms

    deep = campaign.confusion_for("SA-Deep")
    assert d.PRECISION.compute(deep) > 0.9  # taint analysis is precise
    assert d.RECALL.compute(deep) < 1.0  # but the depth budget loses flows

    probe = campaign.confusion_for("PT-Probe")
    assert d.RECALL.compute(probe) < 0.6  # black-box testing misses a lot

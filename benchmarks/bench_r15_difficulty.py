"""Bench R15 — regenerate the difficulty-calibration figure.

Extension experiment: recall per difficulty bin for representative tools.
Shape claims: the flow-insensitive scanner is difficulty-blind; the
depth-limited analyzer collapses past its budget; the dynamic tester
degrades smoothly.
"""

from __future__ import annotations

import math

from repro.bench.experiments import r15_difficulty


def test_bench_r15_difficulty(benchmark, save_result):
    result = benchmark.pedantic(r15_difficulty.run, rounds=1, iterations=1)
    save_result("R15", result.render())
    print()
    print(result.render())

    recalls = result.data["recalls"]
    assert all(r == 1.0 for r in recalls["SA-Grep"] if math.isfinite(r))
    assert recalls["SA-Deep"][0] > 0.9
    assert recalls["SA-Deep"][-1] < 0.3
    assert recalls["PT-Spider"][0] > recalls["PT-Spider"][-1]

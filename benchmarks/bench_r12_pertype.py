"""Bench R12 — regenerate the per-vulnerability-type breakdown table.

Extension experiment: campaign results split by class, plus the macro/micro
aggregation comparison.  Shape claims: breakdown cells re-pool to the
campaign totals, the aggregations correlate but not perfectly, and per-class
values expose class-skewed tools (VS-Alpha is strong on SQLi, weak on XPath
by construction).
"""

from __future__ import annotations

from repro.bench.experiments import r12_pertype
from repro.metrics import definitions as d
from repro.workload.taxonomy import VulnerabilityType


def test_bench_r12_pertype(benchmark, save_result, engine_context):
    result = benchmark(lambda: r12_pertype.run(context=engine_context))
    save_result("R12", result.render())
    print()
    print(result.render())

    assert 0.3 < result.data["tau_macro_micro"] <= 1.0

    alpha = result.data["breakdowns"]["VS-Alpha"]
    recalls = alpha.metric_by_type(d.RECALL)
    assert (
        recalls[VulnerabilityType.SQL_INJECTION]
        > recalls[VulnerabilityType.XPATH_INJECTION]
    )

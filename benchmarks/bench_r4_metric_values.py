"""Bench R4 — regenerate the metric-values-per-tool table.

Paper analogue: the table evaluating every candidate metric for every
benchmarked tool.  Shape claims: values are defined for the whole core
candidate set on a realistic campaign, and the family trade-offs are visible
(SA-Grep tops recall but bottoms precision).
"""

from __future__ import annotations

import math

from repro.bench.experiments import r4_metric_values


def test_bench_r4_metric_values(benchmark, save_result, engine_context):
    result = benchmark(lambda: r4_metric_values.run(context=engine_context))
    save_result("R4", result.render())
    print()
    print(result.render())

    values = result.data["values"]
    # Every cell of the table is a defined number on this campaign.
    for symbol, per_tool in values.items():
        for tool, value in per_tool.items():
            assert math.isfinite(value), (symbol, tool)

    recall = values["REC"]
    precision = values["PRE"]
    assert max(recall, key=recall.get) in {"SA-Grep", "SA-Flow"}
    assert min(precision, key=precision.get) == "SA-Grep"

"""Bench R14 — regenerate the significance matrix and Wilson intervals.

Extension experiment: McNemar's exact test for every tool pair plus Wilson
intervals per tool.  Shape claims: on a ~1200-site workload most pairs of
the deliberately spread-out suite are statistically distinguishable, and the
extreme pair (flag-everything scanner vs precise analyzer) is overwhelmingly
so.
"""

from __future__ import annotations

from repro.bench.experiments import r14_significance


def test_bench_r14_significance(benchmark, save_result, engine_context):
    result = benchmark(lambda: r14_significance.run(context=engine_context))
    save_result("R14", result.render())
    print()
    print(result.render())

    p_values = result.data["p_values"]
    assert p_values[("SA-Grep", "SA-Deep")] < 1e-6
    assert result.data["significant_fraction"] > 0.5
    assert all(0.0 <= p <= 1.0 for p in p_values.values())

"""Bench R6 — regenerate the metric-vs-prevalence figure.

Paper analogue: the figure showing prevalence-dependent metrics mislead at
low prevalence.  Shape claims: informedness/recall flat across the sweep,
precision/F1 swing hard, and accuracy flips which of two fixed tools it
prefers while informedness never does.
"""

from __future__ import annotations

from repro.bench.experiments import r6_prevalence


def test_bench_r6_prevalence(benchmark, save_result):
    result = benchmark(r6_prevalence.run)
    save_result("R6", result.render())
    print()
    print(result.render())

    swings = result.data["swings"]
    assert swings["INF"] < 0.01
    assert swings["REC"] < 0.01
    assert swings["PRE"] > 0.3
    assert swings["F1"] > 0.3

    flips = result.data["flips"]
    assert flips["ACC"] >= 1  # accuracy changes its preferred tool
    assert flips["INF"] == 0  # informedness never does
    assert flips["REC"] == 0

"""Bench — sharded streaming campaigns: exactness, throughput, memory bound.

Three claims back the scaling docs, and each is measured here rather than
asserted from theory:

1. **Exactness** — the streaming accumulator's totals are bit-identical to
   the in-memory path (`materialized_totals`) at the canonical seed,
   including a shard size that does not divide the corpus evenly.
2. **Throughput** — units/second through the full CLI path
   (``repro run --scale N --shard-size K``), measured in a child process
   so peak RSS (``ru_maxrss``) is the run's own high-water mark, not the
   test harness's.
3. **Bounded memory** — growing the corpus 10x at a fixed shard size must
   not grow peak RSS anywhere near 10x: the corpus never exists in memory,
   only one shard plus the accumulator's running totals.

Numbers land in ``results/BENCH_shard.json`` (schema-tagged) and the
throughput table in ``docs/scaling.md`` is regenerated in place between
its markers, so the docs cite committed measurements.

The default run is a smoke-sized sweep; set ``BENCH_SHARD_FULL=1`` to
measure the million-unit campaign the docs table reports (several minutes
on one core).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.bench.streaming import (
    CampaignAccumulator,
    evaluate_shard,
    materialized_totals,
)
from repro.tools.suite import reference_suite
from repro.workload.sharded import plan_shards

ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "results" / "BENCH_shard.json"
BENCH_JSON_SCHEMA = "repro/bench-shard@1"
SEED = 2015

SCALING_DOC = ROOT / "docs" / "scaling.md"
DOC_TABLE_BEGIN = "<!-- shard-bench:rows:begin -->"
DOC_TABLE_END = "<!-- shard-bench:rows:end -->"

#: Smoke sweep (seconds); BENCH_SHARD_FULL=1 adds the scales the docs cite.
SMOKE_SCALES = [(2_000, 500), (10_000, 2_000)]
FULL_SCALES = [(100_000, 10_000), (1_000_000, 10_000)]

#: Child process that runs the real CLI path and reports its own rusage.
_CHILD = """
import json, resource, sys, time
from repro.cli import main
scale, shard_size = int(sys.argv[1]), int(sys.argv[2])
started = time.perf_counter()
code = main(["run", "--scale", str(scale), "--shard-size", str(shard_size),
             "--quiet", "--seed", "2015"])
wall = time.perf_counter() - started
print(json.dumps({
    "exit_code": code,
    "wall_seconds": wall,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _full() -> bool:
    return os.environ.get("BENCH_SHARD_FULL") == "1"


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one bench's numbers into the dump without clobbering others."""
    data: dict = {"schema": BENCH_JSON_SCHEMA}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            existing = {}
        if existing.get("schema") == BENCH_JSON_SCHEMA:
            data = existing
    data[section] = payload
    BENCH_JSON.parent.mkdir(exist_ok=True)
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _measure_cli(scale: int, shard_size: int) -> dict:
    """One ``repro run --scale`` in a child process; wall + peak RSS."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(scale), str(shard_size)],
        env=env,
        cwd=ROOT,
        capture_output=True,
        text=True,
        timeout=3600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    sample = json.loads(proc.stdout.strip().splitlines()[-1])
    assert sample["exit_code"] == 0
    return {
        "scale": scale,
        "shard_size": shard_size,
        "wall_seconds": round(sample["wall_seconds"], 3),
        "units_per_second": round(scale / sample["wall_seconds"], 1),
        "peak_rss_mb": round(sample["peak_rss_kb"] / 1024, 1),
    }


def _render_doc_table(rows: list[dict]) -> str:
    lines = [
        "| units | shard size | wall (s) | units/s | peak RSS (MB) |",
        "|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['scale']:,} | {row['shard_size']:,} "
            f"| {row['wall_seconds']:.1f} | {row['units_per_second']:,.0f} "
            f"| {row['peak_rss_mb']:.0f} |"
        )
    return "\n".join(lines)


def _refresh_scaling_doc(rows: list[dict]) -> None:
    """Rewrite docs/scaling.md's throughput table between its markers."""
    if not SCALING_DOC.exists():
        return
    text = SCALING_DOC.read_text(encoding="utf-8")
    if DOC_TABLE_BEGIN not in text or DOC_TABLE_END not in text:
        return
    head, rest = text.split(DOC_TABLE_BEGIN, 1)
    _, tail = rest.split(DOC_TABLE_END, 1)
    SCALING_DOC.write_text(
        head + DOC_TABLE_BEGIN + "\n" + _render_doc_table(rows) + "\n"
        + DOC_TABLE_END + tail,
        encoding="utf-8",
    )


def test_bench_shard_streaming_exactness():
    """Streaming totals == in-memory totals, exactly, ragged split included."""
    plan = plan_shards(scale=2_000, shard_size=512, seed=SEED)
    tools = reference_suite(seed=SEED)
    accumulator = CampaignAccumulator([tool.name for tool in tools])
    for spec in plan:
        accumulator.fold(
            evaluate_shard(tools, plan.generate(spec.index), spec.index)
        )
    streaming = accumulator.result()
    reference = materialized_totals(tools, plan)
    identical = streaming.confusions == reference.confusions
    assert identical, "streaming totals diverged from the in-memory path"
    assert streaming.n_sites == reference.n_sites
    _update_bench_json(
        "parity",
        {
            "seed": SEED,
            "scale": plan.scale,
            "shard_size": plan.shard_size,
            "n_shards": plan.n_shards,
            "n_sites": streaming.n_sites,
            "identical": identical,
        },
    )


def test_bench_shard_throughput(results_dir):
    """Units/second and peak RSS through the CLI, across scales."""
    from repro.reporting.tables import format_table

    sweep = SMOKE_SCALES + (FULL_SCALES if _full() else [])
    rows = [_measure_cli(scale, shard_size) for scale, shard_size in sweep]
    _update_bench_json("throughput", {"seed": SEED, "jobs": 1, "rows": rows})
    rendered = format_table(
        headers=["units", "shard size", "wall s", "units/s", "peak RSS MB"],
        rows=[
            [
                row["scale"],
                row["shard_size"],
                row["wall_seconds"],
                row["units_per_second"],
                row["peak_rss_mb"],
            ]
            for row in rows
        ],
        title=f"Sharded campaign throughput (seed {SEED}, jobs=1)",
    )
    (results_dir / "shard_scale.txt").write_text(rendered + "\n", encoding="utf-8")
    print(rendered)
    if _full():
        _refresh_scaling_doc(rows)


def test_bench_shard_memory_is_bounded():
    """10x the corpus at fixed shard size must stay far from 10x the RSS."""
    if _full():
        small_scale, large_scale, shard_size = 100_000, 1_000_000, 10_000
    else:
        small_scale, large_scale, shard_size = 2_000, 20_000, 1_000
    small = _measure_cli(small_scale, shard_size)
    large = _measure_cli(large_scale, shard_size)
    growth = large["peak_rss_mb"] / small["peak_rss_mb"]
    _update_bench_json(
        "memory",
        {
            "shard_size": shard_size,
            "small": small,
            "large": large,
            "corpus_growth": large_scale / small_scale,
            "rss_growth": round(growth, 2),
        },
    )
    # The corpus grew 10x; a streaming run's high-water mark is one shard
    # plus constant accumulator state, so RSS growth must stay small.
    assert growth < 3.0, (
        f"peak RSS grew {growth:.2f}x for a 10x corpus — streaming is "
        "holding more than one shard"
    )

"""Bench — sharded streaming campaigns: exactness, throughput, memory bound.

Four claims back the scaling docs, and each is measured here rather than
asserted from theory:

1. **Exactness** — the streaming accumulator's totals are bit-identical to
   the in-memory path (`materialized_totals`) at the canonical seed,
   including a shard size that does not divide the corpus evenly.
2. **Generation throughput** — the columnar batch path
   (`repro.workload.columnar`) generates shard-sized workloads at least
   10x faster than the scalar reference for every registered ecosystem,
   while producing byte-identical output (digest-checked per run).
3. **Campaign throughput** — units/second through the full CLI path
   (``repro run --scale N --shard-size K``), measured in a child process
   so peak RSS (``ru_maxrss``) is the run's own high-water mark, not the
   test harness's.
4. **Bounded memory** — growing the corpus 10x at a fixed shard size must
   not grow peak RSS anywhere near 10x: the corpus never exists in memory,
   only one shard plus the accumulator's running totals.

Numbers land in ``results/BENCH_shard.json`` (schema-tagged) and the
marker-delimited tables in ``docs/scaling.md`` are regenerated in place
through :mod:`repro.reporting.benchtables` — the same renderer
``tools/check_docs.py`` uses to flag a stale table — so the docs always
cite committed measurements.

The default run is a smoke-sized sweep; set ``BENCH_SHARD_FULL=1`` to
measure the million-unit campaign the docs table reports (several minutes
on one core).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.bench.streaming import (
    CampaignAccumulator,
    evaluate_shard,
    materialized_totals,
)
from repro.tools.suite import reference_suite
from repro.workload.sharded import plan_shards

ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "results" / "BENCH_shard.json"
BENCH_JSON_SCHEMA = "repro/bench-shard@1"
SEED = 2015

#: Smoke sweep (seconds); BENCH_SHARD_FULL=1 adds the scales the docs cite.
SMOKE_SCALES = [(2_000, 500), (10_000, 2_000)]
FULL_SCALES = [(100_000, 10_000), (1_000_000, 10_000)]

#: Child process that runs the real CLI path and reports its own rusage.
_CHILD = """
import json, resource, sys, time
from repro.cli import main
scale, shard_size = int(sys.argv[1]), int(sys.argv[2])
started = time.perf_counter()
code = main(["run", "--scale", str(scale), "--shard-size", str(shard_size),
             "--quiet", "--seed", "2015"])
wall = time.perf_counter() - started
print(json.dumps({
    "exit_code": code,
    "wall_seconds": wall,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _full() -> bool:
    return os.environ.get("BENCH_SHARD_FULL") == "1"


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one bench's numbers into the dump without clobbering others."""
    data: dict = {"schema": BENCH_JSON_SCHEMA}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            existing = {}
        if existing.get("schema") == BENCH_JSON_SCHEMA:
            data = existing
    data[section] = payload
    BENCH_JSON.parent.mkdir(exist_ok=True)
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _measure_cli(scale: int, shard_size: int) -> dict:
    """One ``repro run --scale`` in a child process; wall + peak RSS."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(scale), str(shard_size)],
        env=env,
        cwd=ROOT,
        capture_output=True,
        text=True,
        timeout=3600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    sample = json.loads(proc.stdout.strip().splitlines()[-1])
    assert sample["exit_code"] == 0
    return {
        "scale": scale,
        "shard_size": shard_size,
        "wall_seconds": round(sample["wall_seconds"], 3),
        "units_per_second": round(scale / sample["wall_seconds"], 1),
        "peak_rss_mb": round(sample["peak_rss_kb"] / 1024, 1),
    }


def _refresh_docs() -> None:
    """Regenerate every registered table that cites this bench's dump.

    Uses the same registry and renderers the docs checker verifies with
    (:mod:`repro.reporting.benchtables`), so a bench run leaves the docs
    in exactly the state ``tools/check_docs.py`` calls fresh.
    """
    from repro.reporting.benchtables import bench_tables, refresh_doc

    for table in bench_tables():
        if ROOT / table.results == BENCH_JSON:
            refresh_doc(table, ROOT)


def test_bench_shard_streaming_exactness():
    """Streaming totals == in-memory totals, exactly, ragged split included."""
    plan = plan_shards(scale=2_000, shard_size=512, seed=SEED)
    tools = reference_suite(seed=SEED)
    accumulator = CampaignAccumulator([tool.name for tool in tools])
    for spec in plan:
        accumulator.fold(
            evaluate_shard(tools, plan.generate(spec.index), spec.index)
        )
    streaming = accumulator.result()
    reference = materialized_totals(tools, plan)
    identical = streaming.confusions == reference.confusions
    assert identical, "streaming totals diverged from the in-memory path"
    assert streaming.n_sites == reference.n_sites
    _update_bench_json(
        "parity",
        {
            "seed": SEED,
            "scale": plan.scale,
            "shard_size": plan.shard_size,
            "n_shards": plan.n_shards,
            "n_sites": streaming.n_sites,
            "identical": identical,
        },
    )


def test_bench_shard_throughput(results_dir):
    """Units/second and peak RSS through the CLI, across scales."""
    from repro.reporting.tables import format_table

    sweep = SMOKE_SCALES + (FULL_SCALES if _full() else [])
    rows = [_measure_cli(scale, shard_size) for scale, shard_size in sweep]
    _update_bench_json("throughput", {"seed": SEED, "jobs": 1, "rows": rows})
    rendered = format_table(
        headers=["units", "shard size", "wall s", "units/s", "peak RSS MB"],
        rows=[
            [
                row["scale"],
                row["shard_size"],
                row["wall_seconds"],
                row["units_per_second"],
                row["peak_rss_mb"],
            ]
            for row in rows
        ],
        title=f"Sharded campaign throughput (seed {SEED}, jobs=1)",
    )
    (results_dir / "shard_scale.txt").write_text(rendered + "\n", encoding="utf-8")
    print(rendered)
    _refresh_docs()


def _best_wall(fn, reps: int) -> tuple[object, float]:
    """``(last result, best wall seconds)`` over ``reps`` timed calls.

    Best-of-N is the steady-state number a campaign pays per shard;
    single-shot timings fold first-call jitter (allocator growth, GC over
    the other path's surviving objects) into the measurement.
    """
    best = float("inf")
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def test_bench_generation_throughput(results_dir):
    """Scalar vs columnar generation: byte-identical, and >= 10x faster.

    Times both paths on a shard-sized config for every registered
    ecosystem (best-of-N, columnar warmed first so imports and the
    interning caches are steady-state).  Identity is checked per run via
    the persisted payload digest — the speedup only counts because the
    output is the same bytes.  The 10x claim is anchored on the default
    ecosystem, whose scalar path is the historical baseline; ecosystems
    with cheap scalar generation (shallow chains) report smaller ratios
    at similar absolute columnar throughput.
    """
    from repro.persist import payload_digest, workload_to_dict
    from repro.reporting.tables import format_table
    from repro.workload.columnar import generate_workload_batch, supports_batch
    from repro.workload.ecosystems import (
        DEFAULT_ECOSYSTEM,
        ecosystem_names,
        get_ecosystem,
    )
    from repro.workload.generator import generate_workload_scalar

    n_units = 10_000 if _full() else 2_000
    rows = []
    for name in ecosystem_names():
        config = get_ecosystem(name).workload_config(
            n_units=n_units, seed=SEED, name=f"genbench-{name}"
        )
        assert supports_batch(config)
        generate_workload_batch(config)  # warm caches: steady-state timing
        batch, batch_wall = _best_wall(
            lambda: generate_workload_batch(config), reps=3
        )
        scalar, scalar_wall = _best_wall(
            lambda: generate_workload_scalar(config), reps=2
        )
        identical = payload_digest(workload_to_dict(scalar)) == payload_digest(
            workload_to_dict(batch)
        )
        assert identical, f"columnar output diverged from scalar for {name}"
        rows.append(
            {
                "ecosystem": name,
                "n_units": n_units,
                "scalar_units_per_second": round(n_units / scalar_wall, 1),
                "batch_units_per_second": round(n_units / batch_wall, 1),
                "speedup": round(scalar_wall / batch_wall, 2),
                "identical": identical,
            }
        )
    _update_bench_json(
        "generation", {"seed": SEED, "n_units": n_units, "rows": rows}
    )
    rendered = format_table(
        headers=["ecosystem", "scalar units/s", "columnar units/s", "speedup"],
        rows=[
            [
                row["ecosystem"],
                row["scalar_units_per_second"],
                row["batch_units_per_second"],
                row["speedup"],
            ]
            for row in rows
        ],
        title=f"Workload generation throughput (seed {SEED}, {n_units:,} units)",
    )
    (results_dir / "generation_throughput.txt").write_text(
        rendered + "\n", encoding="utf-8"
    )
    print(rendered)
    # The docs claim >= 10x on the historical baseline (the default
    # ecosystem's scalar path); every other ecosystem must still win
    # outright.  Smoke corpora are small enough that constant overheads
    # blur the ratio, so only the full run enforces the 10x figure.
    default_row = next(
        row for row in rows if row["ecosystem"] == DEFAULT_ECOSYSTEM
    )
    floor = 10.0 if _full() else 2.0
    assert default_row["speedup"] >= floor, (
        f"columnar speedup on {DEFAULT_ECOSYSTEM} fell to "
        f"{default_row['speedup']:.1f}x (floor {floor}x)"
    )
    assert all(row["speedup"] >= 1.0 for row in rows), rows
    _refresh_docs()


def test_bench_shard_memory_is_bounded():
    """10x the corpus at fixed shard size must stay far from 10x the RSS."""
    if _full():
        small_scale, large_scale, shard_size = 100_000, 1_000_000, 10_000
    else:
        small_scale, large_scale, shard_size = 2_000, 20_000, 1_000
    small = _measure_cli(small_scale, shard_size)
    large = _measure_cli(large_scale, shard_size)
    growth = large["peak_rss_mb"] / small["peak_rss_mb"]
    _update_bench_json(
        "memory",
        {
            "shard_size": shard_size,
            "small": small,
            "large": large,
            "corpus_growth": large_scale / small_scale,
            "rss_growth": round(growth, 2),
        },
    )
    # The corpus grew 10x; a streaming run's high-water mark is one shard
    # plus constant accumulator state, so RSS growth must stay small.
    assert growth < 3.0, (
        f"peak RSS grew {growth:.2f}x for a 10x corpus — streaming is "
        "holding more than one shard"
    )

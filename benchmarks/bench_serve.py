"""Bench — the campaign service under a Poisson multi-tenant trace.

Two claims back ``docs/serve.md``, both measured against the real HTTP
surface (loopback TCP, the actual asyncio server, the actual engine as
the execution backend):

1. **Latency** — p50/p99 of campaign submission (``POST /v1/campaigns``)
   and of read-side queries (job status / finished results) under a
   pipelined multi-connection client replaying the request trace.
2. **Fairness** — with one abusive tenant submitting at 6× the normal
   Poisson rate (the FAIRSERVE-style skew), the deficit-round-robin queue
   bounds the abusive tenant's *served* share to its weight share over
   the backlogged window, even though its *submitted* share is dominant.

The trace is the open-loop Poisson model from :mod:`repro.serve.trace`:
per-tenant exponential inter-arrival streams merged in time order, seed
recorded in the dump.  The first slice of the trace drives submissions;
the remainder drives the query phase, replayed closed-loop at saturation
(batched pipelining over a few keep-alive connections) because the point
is service latency under load, not client sleep accuracy.

Numbers land in ``results/BENCH_serve.json`` (``repro/bench-serve@1``)
and the marker tables in ``docs/serve.md`` are regenerated through
:mod:`repro.reporting.benchtables`.  The default run is smoke-sized; set
``BENCH_SERVE_FULL=1`` to replay the million-request trace the docs
cite (a couple of minutes on one core).
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import threading
import time
from pathlib import Path

from repro.serve.app import run_app
from repro.serve.service import CampaignService, ServiceConfig
from repro.serve.trace import build_trace

ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "results" / "BENCH_serve.json"
BENCH_JSON_SCHEMA = "repro/bench-serve@1"
SEED = 2015

N_TENANTS = 4
ABUSIVE = "tenant-0"
#: Each submitted campaign: one shard, small enough that the full trace's
#: backlog drains in seconds while still exercising the real engine.
JOB_SCALE = 60
#: DRR quantum for the bench service: a few jobs' worth, so rotations are
#: visible at this job size.
QUANTUM = 120

#: Query-phase client shape: keep-alive connections × pipeline window.
CONNECTIONS = 8
PIPELINE_WINDOW = 64


def _full() -> bool:
    return os.environ.get("BENCH_SERVE_FULL") == "1"


def _trace_duration(target_requests: int) -> float:
    """Horizon so the merged trace carries ~``target_requests`` events."""
    total_rate = 0.05 * (N_TENANTS - 1) + 0.3
    return target_requests / total_rate


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into the dump without clobbering the other."""
    data: dict = {"schema": BENCH_JSON_SCHEMA}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            existing = {}
        if existing.get("schema") == BENCH_JSON_SCHEMA:
            data = existing
    data[section] = payload
    BENCH_JSON.parent.mkdir(exist_ok=True)
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _refresh_docs() -> None:
    from repro.reporting.benchtables import bench_tables, refresh_doc

    for table in bench_tables():
        if ROOT / table.results == BENCH_JSON:
            refresh_doc(table, ROOT)


class _LiveService:
    """The service + HTTP app on an ephemeral loopback port."""

    def __init__(self, state_dir: Path):
        self.service = CampaignService(
            ServiceConfig(state_dir=state_dir, quantum=QUANTUM)
        )
        self.service.start()
        self.loop = asyncio.new_event_loop()
        ready = self.loop.create_future()
        self._task = None

        def runner():
            asyncio.set_event_loop(self.loop)
            self._task = self.loop.create_task(
                run_app(self.service, port=0, ready=ready)
            )
            try:
                self.loop.run_until_complete(self._task)
            except asyncio.CancelledError:
                pass

        self.thread = threading.Thread(target=runner, daemon=True)
        self.thread.start()
        while not ready.done():
            time.sleep(0.01)
        self.port = ready.result()

    def close(self):
        self.loop.call_soon_threadsafe(lambda: self._task.cancel())
        self.thread.join(timeout=60)


class _Client:
    """A keep-alive raw-socket HTTP/1.1 client with request pipelining."""

    def __init__(self, port: int):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.file = self.sock.makefile("rb")

    def close(self):
        self.file.close()
        self.sock.close()

    @staticmethod
    def get(path: str) -> bytes:
        return f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode()

    @staticmethod
    def post(path: str, payload: dict) -> bytes:
        body = json.dumps(payload).encode()
        return (
            f"POST {path} HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode() + body

    def read_response(self) -> tuple[int, bytes]:
        """One response off the stream (status, body)."""
        status_line = self.file.readline()
        status = int(status_line.split(b" ", 2)[1])
        length = 0
        while True:
            line = self.file.readline().strip()
            if not line:
                break
            name, _, value = line.partition(b":")
            if name.lower() == b"content-length":
                length = int(value)
        return status, self.file.read(length)

    def roundtrip(self, request: bytes) -> tuple[int, bytes, float]:
        """Send one request, wait for its response; wall in seconds."""
        started = time.perf_counter()
        self.sock.sendall(request)
        status, body = self.read_response()
        return status, body, time.perf_counter() - started

    def pipeline(self, requests: list[bytes]) -> tuple[list[float], int]:
        """Replay ``requests`` with a bounded in-flight window.

        Returns per-request latencies (send→response, which under
        pipelining includes queueing — the number a client actually
        experiences) and how many responses were non-2xx.
        """
        latencies: list[float] = []
        errors = 0
        pending: list[float] = []
        i = 0
        while i < len(requests) or pending:
            while i < len(requests) and len(pending) < PIPELINE_WINDOW:
                self.sock.sendall(requests[i])
                pending.append(time.perf_counter())
                i += 1
            status, _ = self.read_response()
            latencies.append(time.perf_counter() - pending.pop(0))
            if status >= 300:
                errors += 1
        return latencies, errors


def test_bench_serve_trace(tmp_path, results_dir):
    target = 1_000_000 if _full() else 20_000
    n_submits = 400 if _full() else 60
    trace = build_trace(
        n_tenants=N_TENANTS,
        duration=_trace_duration(target),
        seed=SEED,
        abusive=ABUSIVE,
    )
    assert len(trace.events) > target * 0.9

    live = _LiveService(tmp_path / "state")
    try:
        submit_events = trace.events[:n_submits]
        query_events = trace.events[n_submits:target]

        # -- phase 1: submission burst (backlogs the queue) ---------------
        client = _Client(live.port)
        submit_latencies: list[float] = []
        job_ids: dict[str, list[str]] = {}
        for event in submit_events:
            status, body, wall = client.roundtrip(
                client.post(
                    "/v1/campaigns",
                    {
                        "scale": JOB_SCALE,
                        "shard_size": JOB_SCALE,
                        "tenant": event.tenant,
                    },
                )
            )
            assert status == 202, body
            submit_latencies.append(wall)
            job_ids.setdefault(event.tenant, []).append(
                json.loads(body)["job"]["job_id"]
            )
        submit_end = time.time()

        # -- fairness: dispatch order over the backlogged window ----------
        deadline = time.monotonic() + 600
        while time.monotonic() < deadline:
            status, body, _ = client.roundtrip(client.get("/v1/queue"))
            snap = json.loads(body)
            if snap["pending"] == 0 and snap["states"]["running"] == 0:
                break
            time.sleep(0.1)
        assert snap["states"]["completed"] == n_submits, snap["states"]

        status, body, _ = client.roundtrip(client.get("/v1/jobs"))
        submitted = {t: len(ids) for t, ids in job_ids.items()}
        # DRR bounds the abusive tenant only while every lane is backlogged,
        # so score the jobs dispatched after the last submission landed —
        # by then the whole trace slice is queued — and cut the window where
        # the sparsest lane runs dry.
        backlog = sorted(
            (j for j in json.loads(body)["jobs"]
             if j["started_at"] >= submit_end),
            key=lambda j: j["started_at"],
        )
        remaining = {tenant: 0 for tenant in trace.tenants}
        for job in backlog:
            remaining[job["tenant"]] += 1
        fair_window = N_TENANTS * min(remaining.values())
        assert fair_window > 0, f"a lane drained during submission: {remaining}"
        served = {tenant: 0 for tenant in trace.tenants}
        for job in backlog[:fair_window]:
            served[job["tenant"]] += 1
        served_share = served[ABUSIVE] / fair_window
        fair_share = 1 / N_TENANTS
        bounded = served_share <= fair_share + 0.05
        assert bounded, (
            f"abusive tenant served {served_share:.0%} of the fair window"
        )

        # -- phase 2: read-heavy query trace, pipelined -------------------
        all_ids = [job_id for ids in job_ids.values() for job_id in ids]
        requests = []
        for event in query_events:
            ids = job_ids.get(event.tenant) or all_ids
            job_id = ids[event.index % len(ids)]
            if event.index % 3 == 0:
                requests.append(client.get(f"/v1/jobs/{job_id}/result"))
            else:
                requests.append(client.get(f"/v1/jobs/{job_id}"))

        per_connection = [
            requests[n::CONNECTIONS] for n in range(CONNECTIONS)
        ]
        clients = [_Client(live.port) for _ in range(CONNECTIONS)]
        query_latencies: list[list[float]] = [[] for _ in range(CONNECTIONS)]
        error_counts = [0] * CONNECTIONS
        started = time.perf_counter()

        def worker(n: int) -> None:
            query_latencies[n], error_counts[n] = clients[n].pipeline(
                per_connection[n]
            )

        threads = [
            threading.Thread(target=worker, args=(n,))
            for n in range(CONNECTIONS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        query_wall = time.perf_counter() - started
        for extra in clients:
            extra.close()
        client.close()
        assert sum(error_counts) == 0, f"{sum(error_counts)} query errors"

        flat = sorted(lat for chunk in query_latencies for lat in chunk)
        submits = sorted(submit_latencies)
        rows = [
            {
                "phase": "submit",
                "requests": len(submits),
                "p50_ms": round(_percentile(submits, 0.50) * 1e3, 3),
                "p99_ms": round(_percentile(submits, 0.99) * 1e3, 3),
                "rps": round(len(submits) / sum(submits), 1),
            },
            {
                "phase": "query",
                "requests": len(flat),
                "p50_ms": round(_percentile(flat, 0.50) * 1e3, 3),
                "p99_ms": round(_percentile(flat, 0.99) * 1e3, 3),
                "rps": round(len(flat) / query_wall, 1),
            },
        ]
        _update_bench_json(
            "latency",
            {
                "seed": SEED,
                "trace_requests": target,
                "tenants": N_TENANTS,
                "abusive": ABUSIVE,
                "connections": CONNECTIONS,
                "pipeline_window": PIPELINE_WINDOW,
                "full": _full(),
                "rows": rows,
            },
        )
        _update_bench_json(
            "fairness",
            {
                "seed": SEED,
                "quantum": QUANTUM,
                "job_scale": JOB_SCALE,
                "submitted_jobs": n_submits,
                "fair_window": fair_window,
                "abusive": ABUSIVE,
                "bounded": bounded,
                "tenants": {
                    tenant: {
                        "weight": 1.0,
                        "submitted_share": round(
                            submitted.get(tenant, 0) / n_submits, 4
                        ),
                        "served_share": round(
                            served[tenant] / fair_window, 4
                        ),
                    }
                    for tenant in trace.tenants
                },
            },
        )
        summary = (
            f"serve bench: {len(flat):,} queries at "
            f"p50={rows[1]['p50_ms']}ms p99={rows[1]['p99_ms']}ms "
            f"({rows[1]['rps']:,.0f} req/s, {CONNECTIONS} conns); "
            f"abusive served share {served_share:.0%} (fair {fair_share:.0%})"
        )
        (results_dir / "serve_trace.txt").write_text(
            summary + "\n", encoding="utf-8"
        )
        print(summary)
        _refresh_docs()
    finally:
        live.close()
        live.service.stop()
